#pragma once
// Data-layout transformation for offloading (slide 25: "how the data layout
// has to be transformed" between cluster and booster code parts).
//
// The offload path ships contiguous byte buffers; application data is often
// strided (a tile of a larger matrix, a column slice, a halo).  Layout2D
// describes a strided 2-D region of elements and packs/unpacks it to/from a
// contiguous buffer — the simulator-level equivalent of MPI derived
// datatypes (MPI_Type_vector and friends).

#include <cstring>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace deep::mpi {

/// A strided 2-D block: `rows` runs of `row_elems` elements, consecutive
/// runs separated by `row_stride` elements in the source array.
/// Element type is erased to a size in bytes.
struct Layout2D {
  std::size_t rows = 0;
  std::size_t row_elems = 0;
  std::size_t row_stride = 0;   // in elements; >= row_elems
  std::size_t elem_bytes = 8;

  std::size_t packed_bytes() const { return rows * row_elems * elem_bytes; }
  std::size_t span_elems() const {
    return rows == 0 ? 0 : (rows - 1) * row_stride + row_elems;
  }

  void validate() const {
    DEEP_EXPECT(elem_bytes > 0, "Layout2D: element size must be positive");
    DEEP_EXPECT(row_stride >= row_elems,
                "Layout2D: stride must cover the row");
  }
};

/// Packs the strided region starting at `src` into a fresh contiguous
/// buffer (row-major).
inline std::vector<std::byte> pack(const Layout2D& layout,
                                   std::span<const std::byte> src) {
  layout.validate();
  DEEP_EXPECT(src.size() >= layout.span_elems() * layout.elem_bytes,
              "pack: source does not cover the layout");
  std::vector<std::byte> out(layout.packed_bytes());
  const std::size_t row_bytes = layout.row_elems * layout.elem_bytes;
  const std::size_t stride_bytes = layout.row_stride * layout.elem_bytes;
  for (std::size_t r = 0; r < layout.rows; ++r) {
    std::memcpy(out.data() + r * row_bytes, src.data() + r * stride_bytes,
                row_bytes);
  }
  return out;
}

/// Unpacks a contiguous buffer produced by pack() back into the strided
/// region starting at `dst`.
inline void unpack(const Layout2D& layout, std::span<const std::byte> packed,
                   std::span<std::byte> dst) {
  layout.validate();
  DEEP_EXPECT(packed.size() == layout.packed_bytes(),
              "unpack: packed buffer has wrong size");
  DEEP_EXPECT(dst.size() >= layout.span_elems() * layout.elem_bytes,
              "unpack: destination does not cover the layout");
  const std::size_t row_bytes = layout.row_elems * layout.elem_bytes;
  const std::size_t stride_bytes = layout.row_stride * layout.elem_bytes;
  for (std::size_t r = 0; r < layout.rows; ++r) {
    std::memcpy(dst.data() + r * stride_bytes, packed.data() + r * row_bytes,
                row_bytes);
  }
}

/// Typed helpers.
template <typename T>
std::vector<std::byte> pack(Layout2D layout, std::span<const T> src) {
  layout.elem_bytes = sizeof(T);
  return pack(layout, std::as_bytes(src));
}

template <typename T>
void unpack(Layout2D layout, std::span<const std::byte> packed,
            std::span<T> dst) {
  layout.elem_bytes = sizeof(T);
  unpack(layout, packed, std::as_writable_bytes(dst));
}

/// Packs with transposition: the packed buffer holds the region
/// column-major (rows and columns swapped).  Used when cluster and booster
/// code parts disagree on the element order.
template <typename T>
std::vector<std::byte> pack_transposed(const Layout2D& layout,
                                       std::span<const T> src) {
  Layout2D l = layout;
  l.elem_bytes = sizeof(T);
  l.validate();
  DEEP_EXPECT(src.size() >= l.span_elems(),
              "pack_transposed: source does not cover the layout");
  std::vector<std::byte> out(l.packed_bytes());
  auto* out_t = reinterpret_cast<T*>(out.data());
  for (std::size_t r = 0; r < l.rows; ++r)
    for (std::size_t c = 0; c < l.row_elems; ++c)
      out_t[c * l.rows + r] = src[r * l.row_stride + c];
  return out;
}

}  // namespace deep::mpi

#pragma once
// Execution-lane identity for the parallel simulation engine.
//
// A *lane* names the partition a thread is currently executing on behalf of
// (docs/parallel_engine.md).  The engine sets the lane when a worker enters
// a partition's event window; lane-aware facilities — the obs::Registry's
// per-lane metric cells and the net pool arenas — key their storage off it
// so concurrent partitions never touch each other's mutable state.
//
// Lane 0 is the default for every thread, including the main thread of a
// plain serial simulation, so single-partition runs behave exactly as if
// lanes did not exist.

#include <cstdint>

namespace deep::util {

/// Maximum number of execution lanes (engine partitions) supported by the
/// lane-indexed facilities.  Small by design: lanes map to worker-executed
/// partitions, not to simulated entities.
inline constexpr std::uint32_t kMaxLanes = 64;

namespace detail {
inline thread_local std::uint32_t t_exec_lane = 0;
}  // namespace detail

/// The lane this thread currently executes on behalf of (0 by default).
inline std::uint32_t exec_lane() noexcept { return detail::t_exec_lane; }

/// Sets this thread's lane.  Called by the engine's partition executor; user
/// code never needs it.
inline void set_exec_lane(std::uint32_t lane) noexcept {
  detail::t_exec_lane = lane;
}

/// RAII lane switch (exception-safe restore).
class LaneGuard {
 public:
  explicit LaneGuard(std::uint32_t lane) noexcept : prev_(exec_lane()) {
    set_exec_lane(lane);
  }
  ~LaneGuard() { set_exec_lane(prev_); }
  LaneGuard(const LaneGuard&) = delete;
  LaneGuard& operator=(const LaneGuard&) = delete;

 private:
  std::uint32_t prev_;
};

}  // namespace deep::util

#pragma once
// Execution-lane and session identity for the simulation runtime.
//
// A *lane* names the partition a thread is currently executing on behalf of
// (docs/parallel_engine.md).  The engine sets the lane when a worker enters
// a partition's event window; lane-aware facilities — the obs::Registry's
// per-lane metric cells and the net pool arenas — key their storage off it
// so concurrent partitions never touch each other's mutable state.
//
// Lane 0 is the default for every thread, including the main thread of a
// plain serial simulation, so single-partition runs behave exactly as if
// lanes did not exist.
//
// A *session* names an independent simulation living in the same process
// (docs/service.md).  Lanes isolate the partitions of ONE engine from each
// other; sessions isolate whole engines: the net pool arenas key their
// storage off (session, lane), so two DeepSystems running concurrently on
// different threads never share a free list.  Session 0 is the default for
// every thread — one-shot CLI runs, tests and benches behave exactly as if
// sessions did not exist.  The service layer claims a SessionSlot per
// concurrently-running job and installs it (SessionGuard) around the job's
// whole system lifetime: construction, run and teardown all resolve pools
// through the same shard.

#include <cstdint>
#include <mutex>

namespace deep::util {

/// Maximum number of execution lanes (engine partitions) supported by the
/// lane-indexed facilities.  Small by design: lanes map to worker-executed
/// partitions, not to simulated entities.
inline constexpr std::uint32_t kMaxLanes = 64;

/// Maximum number of concurrent in-process sessions (slot 0 is the default
/// session; slots 1..kMaxSessions-1 are claimable via SessionSlot).
inline constexpr std::uint32_t kMaxSessions = 16;

namespace detail {
inline thread_local std::uint32_t t_exec_lane = 0;
inline thread_local std::uint32_t t_exec_session = 0;
}  // namespace detail

/// The lane this thread currently executes on behalf of (0 by default).
inline std::uint32_t exec_lane() noexcept { return detail::t_exec_lane; }

/// Sets this thread's lane.  Called by the engine's partition executor; user
/// code never needs it.
inline void set_exec_lane(std::uint32_t lane) noexcept {
  detail::t_exec_lane = lane;
}

/// The session this thread currently executes on behalf of (0 by default).
inline std::uint32_t exec_session() noexcept { return detail::t_exec_session; }

/// Sets this thread's session.  Engine worker threads inherit the session of
/// the thread that launched the run; user code uses SessionGuard instead.
inline void set_exec_session(std::uint32_t session) noexcept {
  detail::t_exec_session = session;
}

/// The shard index combining this thread's session and lane — the key the
/// pool slot tables use.  Distinct sessions get disjoint shard ranges, so a
/// facility indexed by pool_shard() is automatically session-isolated.
inline std::uint32_t pool_shard() noexcept {
  return detail::t_exec_session * kMaxLanes + detail::t_exec_lane;
}

/// RAII lane switch (exception-safe restore).
class LaneGuard {
 public:
  explicit LaneGuard(std::uint32_t lane) noexcept : prev_(exec_lane()) {
    set_exec_lane(lane);
  }
  ~LaneGuard() { set_exec_lane(prev_); }
  LaneGuard(const LaneGuard&) = delete;
  LaneGuard& operator=(const LaneGuard&) = delete;

 private:
  std::uint32_t prev_;
};

/// RAII session switch (exception-safe restore).  Install around the WHOLE
/// lifetime of the session's engine/system: every pool acquire and release
/// must resolve through the same shard.
class SessionGuard {
 public:
  explicit SessionGuard(std::uint32_t session) noexcept
      : prev_(exec_session()) {
    set_exec_session(session);
  }
  ~SessionGuard() { set_exec_session(prev_); }
  SessionGuard(const SessionGuard&) = delete;
  SessionGuard& operator=(const SessionGuard&) = delete;

 private:
  std::uint32_t prev_;
};

namespace detail {
struct SessionSlots {
  std::mutex mu;
  bool used[kMaxSessions] = {};
};
inline SessionSlots& session_slots() {
  static SessionSlots slots;  // slot 0 (the default session) is never handed out
  return slots;
}
}  // namespace detail

/// Claims a process-unique session slot in [1, kMaxSessions) for the
/// lifetime of this object.  Acquisition fails (ok() == false) when every
/// slot is taken; callers bound their concurrency — the service clamps its
/// worker count below kMaxSessions — so exhaustion indicates misuse.
class SessionSlot {
 public:
  SessionSlot() {
    detail::SessionSlots& s = detail::session_slots();
    std::lock_guard<std::mutex> lock(s.mu);
    for (std::uint32_t i = 1; i < kMaxSessions; ++i) {
      if (!s.used[i]) {
        s.used[i] = true;
        slot_ = i;
        return;
      }
    }
  }
  ~SessionSlot() {
    if (slot_ == 0) return;
    detail::SessionSlots& s = detail::session_slots();
    std::lock_guard<std::mutex> lock(s.mu);
    s.used[slot_] = false;
  }
  SessionSlot(const SessionSlot&) = delete;
  SessionSlot& operator=(const SessionSlot&) = delete;

  /// False when every slot was taken (caller exceeded kMaxSessions - 1
  /// concurrent sessions); the slot then aliases the default session 0.
  bool ok() const noexcept { return slot_ != 0; }
  std::uint32_t slot() const noexcept { return slot_; }

 private:
  std::uint32_t slot_ = 0;
};

}  // namespace deep::util

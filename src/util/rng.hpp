#pragma once
// Deterministic pseudo-random number generation for reproducible simulations.
//
// The engine is xoshiro256** seeded via SplitMix64; identical seeds produce
// identical streams on every platform, which the determinism tests rely on.

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace deep::util {

/// Small, fast, reproducible RNG (xoshiro256**).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    DEEP_EXPECT(bound > 0, "Rng::below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace deep::util

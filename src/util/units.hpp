#pragma once
// Human-friendly unit constants and formatting helpers.

#include <cstdint>
#include <cstdio>
#include <string>

namespace deep::util {

inline constexpr std::int64_t KiB = 1024;
inline constexpr std::int64_t MiB = 1024 * KiB;
inline constexpr std::int64_t GiB = 1024 * MiB;

/// Decimal multipliers for rates and flop counts (as vendors quote them).
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Formats a byte count as "512 B", "4.0 KiB", "1.50 GiB"…
inline std::string format_bytes(std::int64_t bytes) {
  char buf[64];
  if (bytes < KiB) {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes));
  } else if (bytes < MiB) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(bytes) / KiB);
  } else if (bytes < GiB) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", static_cast<double>(bytes) / MiB);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB", static_cast<double>(bytes) / GiB);
  }
  return buf;
}

/// Formats a rate in bytes/second as "5.90 GB/s" (decimal units, as networks
/// are quoted).
inline std::string format_rate(double bytes_per_sec) {
  char buf[64];
  if (bytes_per_sec < kMega) {
    std::snprintf(buf, sizeof buf, "%.1f kB/s", bytes_per_sec / kKilo);
  } else if (bytes_per_sec < kGiga) {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_sec / kMega);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_sec / kGiga);
  }
  return buf;
}

}  // namespace deep::util

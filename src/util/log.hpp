#pragma once
// Minimal leveled logger.
//
// Simulations can emit a lot of per-event chatter; the default level is
// Warn so tests and benches stay quiet.  Set DEEPSIM_LOG=debug|info|warn|off
// or call set_level() to change it.

#include <sstream>
#include <string>

namespace deep::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes one formatted line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (void)(os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

}  // namespace deep::util

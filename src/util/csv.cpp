#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace deep::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  DEEP_EXPECT(!columns_.empty(), "Table: needs at least one column");
}

Table& Table::row() {
  DEEP_EXPECT(rows_.empty() || rows_.back().size() == columns_.size(),
              "Table::row: previous row incomplete");
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(std::string value) {
  DEEP_EXPECT(!rows_.empty() && rows_.back().size() < columns_.size(),
              "Table::add: no open cell");
  rows_.back().emplace_back(std::move(value));
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(std::int64_t value) {
  DEEP_EXPECT(!rows_.empty() && rows_.back().size() < columns_.size(),
              "Table::add: no open cell");
  rows_.back().emplace_back(value);
  return *this;
}

Table& Table::add(double value) {
  DEEP_EXPECT(!rows_.empty() && rows_.back().size() < columns_.size(),
              "Table::add: no open cell");
  rows_.back().emplace_back(value);
  return *this;
}

const Table::Cell& Table::at(std::size_t row, std::size_t col) const {
  DEEP_EXPECT(row < rows_.size() && col < columns_.size(),
              "Table::at: out of range");
  return rows_[row][col];
}

std::string Table::cell_str(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  const double d = std::get<double>(cell);
  char buf[64];
  // %g keeps small latencies and large byte counts both readable.
  std::snprintf(buf, sizeof buf, "%.6g", d);
  return buf;
}

namespace {

/// RFC 4180 field quoting: fields containing the separator, quotes or line
/// breaks are wrapped in double quotes, with embedded quotes doubled.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << csv_field(columns_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << csv_field(cell_str(row[c]));
    os << '\n';
  }
  return os.str();
}

std::string Table::to_pretty() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& out = rendered.emplace_back();
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(cell_str(row[c]));
      width[c] = std::max(width[c], out.back().size());
    }
  }
  std::ostringstream os;
  auto pad = [&os](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w; ++i) os << ' ';
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "  ";
    pad(columns_[c], width[c]);
  }
  os << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rendered) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      pad(row[c], width[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print_csv(std::ostream& os) const { os << to_csv(); }
void Table::print_pretty(std::ostream& os) const { os << to_pretty(); }

}  // namespace deep::util

#pragma once
// Error-handling utilities shared across DEEPsim.
//
// Library invariants are checked with DEEP_EXPECT / DEEP_ASSERT; violations
// throw deep::util::SimError so tests can assert on misuse and long-running
// simulations fail loudly instead of corrupting state.

#include <stdexcept>
#include <string>

namespace deep::util {

/// Base class for all errors raised by the simulator and its libraries.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an API is used outside its contract (bad rank, negative size…).
class UsageError : public SimError {
 public:
  explicit UsageError(const std::string& what) : SimError(what) {}
};

/// Raised when a simulated resource request cannot be satisfied
/// (e.g. not enough free booster nodes for a spawn).
class ResourceError : public SimError {
 public:
  explicit ResourceError(const std::string& what) : SimError(what) {}
};

[[noreturn]] inline void raise_usage(const std::string& msg, const char* file,
                                     int line) {
  throw UsageError(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

}  // namespace deep::util

/// Contract check for caller-supplied arguments; throws UsageError on failure.
#define DEEP_EXPECT(cond, msg)                                \
  do {                                                        \
    if (!(cond)) ::deep::util::raise_usage((msg), __FILE__, __LINE__); \
  } while (0)

/// Internal invariant check; identical behaviour, distinct intent.
#define DEEP_ASSERT(cond, msg) DEEP_EXPECT(cond, msg)

#pragma once
// CSV / aligned-table writer used by the benchmark harnesses to print the
// series behind each reproduced figure.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace deep::util {

/// Accumulates rows of named columns and renders them either as CSV or as an
/// aligned human-readable table.  Cell types: string, integer, double.
class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, double>;

  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string value);
  Table& add(const char* value);
  Table& add(std::int64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
  Table& add(std::size_t value) { return add(static_cast<std::int64_t>(value)); }
  Table& add(double value);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders "col1,col2,...\n..." CSV.
  std::string to_csv() const;
  /// Renders an aligned table with a header rule, for terminal output.
  std::string to_pretty() const;

  void print_csv(std::ostream& os) const;
  void print_pretty(std::ostream& os) const;

 private:
  static std::string cell_str(const Cell& cell);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace deep::util

#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace deep::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("DEEPSIM_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[deepsim %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace deep::util

#include "cbp/gateway.hpp"

#include <cmath>

#include "net/pool.hpp"

namespace deep::cbp {

namespace {

// Reconstructs the bridged message from its flattened frame (net::CbpFrame
// keeps the inner metadata as plain fields so it can live in the header
// variant; the payload rides on the wrapped carrier).
net::Message unwrap_frame(net::Message&& wrapped, const net::CbpFrame& frame) {
  net::Message inner;
  inner.src = frame.inner_src;
  inner.dst = frame.inner_dst;
  inner.port = frame.inner_port;
  inner.size_bytes = frame.inner_size_bytes;
  if (frame.inner_has_wire)
    inner.header = frame.inner_wire;
  else if (frame.inner_has_io)
    inner.header = frame.inner_io;
  inner.payload = std::move(wrapped.payload);
  return inner;
}

}  // namespace

BridgedTransport::BridgedTransport(sim::Engine& engine,
                                   net::Fabric& cluster_fabric,
                                   net::Fabric& booster_fabric,
                                   BridgeParams params)
    : engine_(&engine),
      cluster_(&cluster_fabric),
      booster_(&booster_fabric),
      params_(params) {
  DEEP_EXPECT(params_.smfu_bandwidth_bytes_per_sec > 0,
              "BridgedTransport: SMFU bandwidth must be positive");
  DEEP_EXPECT(params_.frame_header_bytes >= 0,
              "BridgedTransport: negative frame header");
  DEEP_EXPECT(params_.retry_timeout.ps > 0,
              "BridgedTransport: retry timeout must be positive");
  DEEP_EXPECT(params_.backoff_factor >= 1.0,
              "BridgedTransport: backoff factor must be >= 1");
  DEEP_EXPECT(params_.max_retries >= 0,
              "BridgedTransport: negative retry budget");
  // Fabric drops (dead links, injected faults) re-enter through the retry
  // path for CBP frames and surface as losses for everything else.
  const auto handler = [this](net::Message&& msg) {
    on_fabric_drop(std::move(msg));
  };
  cluster_->set_drop_handler(handler);
  booster_->set_drop_handler(handler);
  if (auto* metrics = engine_->metrics()) {
    m_forwarded_ = metrics->counter("cbp.forwarded");
    m_forwarded_bytes_ = metrics->counter("cbp.forwarded_bytes");
    m_timeouts_ = metrics->counter("cbp.timeouts");
    m_retries_ = metrics->counter("cbp.retries");
    m_failovers_ = metrics->counter("cbp.failovers");
    m_frames_lost_ = metrics->counter("cbp.frames_lost");
    m_smfu_busy_ps_ = metrics->counter("cbp.smfu_busy_ps");
    m_smfu_wait_ns_ = metrics->histogram("cbp.smfu_wait_ns");
    m_retry_delay_ns_ = metrics->histogram("cbp.retry_delay_ns");
  }
}

void BridgedTransport::register_cluster_node(hw::NodeId node) {
  DEEP_EXPECT(cluster_->attached(node),
              "register_cluster_node: not attached to cluster fabric");
  DEEP_EXPECT(sides_.try_emplace(node, Side::Cluster).second,
              "register_cluster_node: node already registered");
}

void BridgedTransport::register_booster_node(hw::NodeId node) {
  DEEP_EXPECT(booster_->attached(node),
              "register_booster_node: not attached to booster fabric");
  DEEP_EXPECT(sides_.try_emplace(node, Side::Booster).second,
              "register_booster_node: node already registered");
}

void BridgedTransport::register_gateway(hw::NodeId node) {
  DEEP_EXPECT(cluster_->attached(node) && booster_->attached(node),
              "register_gateway: gateway must sit on both fabrics");
  DEEP_EXPECT(sides_.try_emplace(node, Side::Gateway).second,
              "register_gateway: node already registered");
  gateways_.push_back(GatewayState{node, {}, {}});
  GatewayState& gw = gateways_.back();
  auto handler = [this, &gw](net::Message&& wrapped) {
    forward(gw, std::move(wrapped));
  };
  cluster_->nic(node).bind(net::Port::Cbp, handler);
  booster_->nic(node).bind(net::Port::Cbp, handler);
}

BridgedTransport::Side BridgedTransport::side_of(hw::NodeId node) const {
  auto it = sides_.find(node);
  DEEP_EXPECT(it != sides_.end(), "BridgedTransport: node not registered");
  return it->second;
}

bool BridgedTransport::on_cluster_side(hw::NodeId node) const {
  const Side s = side_of(node);
  return s == Side::Cluster || s == Side::Gateway;
}

bool BridgedTransport::on_booster_side(hw::NodeId node) const {
  const Side s = side_of(node);
  return s == Side::Booster || s == Side::Gateway;
}

net::Nic& BridgedTransport::home_nic(hw::NodeId node) {
  switch (side_of(node)) {
    case Side::Cluster:
    case Side::Gateway:  // gateways' protocol endpoints live cluster-side
      return cluster_->nic(node);
    case Side::Booster:
      return booster_->nic(node);
  }
  throw util::SimError("unreachable");
}

const GatewayStats& BridgedTransport::gateway_stats(hw::NodeId gateway) const {
  for (const auto& gw : gateways_)
    if (gw.node == gateway) return gw.stats;
  throw util::UsageError("gateway_stats: no such gateway");
}

void BridgedTransport::set_gateway_up(hw::NodeId gateway, bool up) {
  for (auto& gw : gateways_) {
    if (gw.node == gateway) {
      gw.up = up;
      return;
    }
  }
  throw util::UsageError("set_gateway_up: no such gateway");
}

bool BridgedTransport::gateway_up(hw::NodeId gateway) const {
  for (const auto& gw : gateways_)
    if (gw.node == gateway) return gw.up;
  throw util::UsageError("gateway_up: no such gateway");
}

std::size_t BridgedTransport::num_gateways_up() const {
  std::size_t n = 0;
  for (const auto& gw : gateways_) n += gw.up ? 1 : 0;
  return n;
}

BridgedTransport::GatewayState& BridgedTransport::pick_gateway(
    hw::NodeId src, hw::NodeId dst) {
  DEEP_EXPECT(!gateways_.empty(),
              "BridgedTransport: cross-fabric send with no gateways");
  DEEP_EXPECT(num_gateways_up() > 0,
              "BridgedTransport: all gateways down — booster unreachable");
  switch (params_.policy) {
    case GatewayPolicy::ByPair: {
      const auto h = static_cast<std::size_t>(src) * 1000003u +
                     static_cast<std::size_t>(dst);
      // Linear probe from the hash slot to the next healthy gateway, so a
      // failure deterministically re-pins each pair.
      for (std::size_t i = 0; i < gateways_.size(); ++i) {
        GatewayState& gw = gateways_[(h + i) % gateways_.size()];
        if (gw.up) return gw;
      }
      break;
    }
    case GatewayPolicy::RoundRobin: {
      for (std::size_t i = 0; i < gateways_.size(); ++i) {
        GatewayState& gw = gateways_[rr_next_];
        rr_next_ = (rr_next_ + 1) % gateways_.size();
        if (gw.up) return gw;
      }
      break;
    }
    case GatewayPolicy::Pinned: {
      // Same hash as ByPair but no probing: the pair sticks to its slot even
      // when that gateway is down (it will time out and retry in place).
      const auto h = static_cast<std::size_t>(src) * 1000003u +
                     static_cast<std::size_t>(dst);
      return gateways_[h % gateways_.size()];
    }
  }
  throw util::SimError("unreachable");
}

BridgedTransport::GatewayState* BridgedTransport::find_gateway(
    hw::NodeId node) {
  for (auto& gw : gateways_)
    if (gw.node == node) return &gw;
  return nullptr;
}

BridgedTransport::GatewayState* BridgedTransport::pick_gateway_for_retry(
    hw::NodeId src, hw::NodeId dst) {
  if (gateways_.empty()) return nullptr;
  const auto h = static_cast<std::size_t>(src) * 1000003u +
                 static_cast<std::size_t>(dst);
  switch (params_.policy) {
    case GatewayPolicy::Pinned:
      // No failover by design: keep hammering the pinned gateway.
      return &gateways_[h % gateways_.size()];
    case GatewayPolicy::ByPair: {
      for (std::size_t i = 0; i < gateways_.size(); ++i) {
        GatewayState& gw = gateways_[(h + i) % gateways_.size()];
        if (gw.up) return &gw;
      }
      return nullptr;
    }
    case GatewayPolicy::RoundRobin: {
      for (std::size_t i = 0; i < gateways_.size(); ++i) {
        GatewayState& gw = gateways_[rr_next_];
        rr_next_ = (rr_next_ + 1) % gateways_.size();
        if (gw.up) return &gw;
      }
      return nullptr;
    }
  }
  throw util::SimError("unreachable");
}

void BridgedTransport::on_fabric_drop(net::Message&& msg) {
  if (msg.port == net::Port::Cbp) {
    // A wrapped frame died between sender and gateway: the sender's timeout
    // fires and the frame re-enters the retry path.
    retry_frame(std::move(msg));
  } else if (msg.port == net::Port::Mpi) {
    // Same-side traffic or the post-gateway leg: no wrapped copy survives,
    // so the loss is final and the MPI layer must be told.
    report_loss(std::move(msg));
  }
  // Anything else (Raw probes etc.): counted by the fabric, nothing to do.
}

void BridgedTransport::retry_frame(net::Message&& wrapped) {
  auto* frame = net::cbp_frame(wrapped);
  DEEP_EXPECT(frame != nullptr, "CBP: malformed frame in retry path");
  if (frame->attempts >= params_.max_retries) {
    ++frames_lost_;
    m_frames_lost_.add(1);
    report_loss(unwrap_frame(std::move(wrapped), *frame));
    return;
  }
  frame->attempts += 1;
  // Exponential backoff: retry_timeout * factor^(attempts-1).  Duration has
  // no floating-point scaling, so compute the picosecond count directly; the
  // result is a pure function of the params, hence reproducible.
  const double scale = std::pow(params_.backoff_factor, frame->attempts - 1);
  const sim::Duration delay{static_cast<std::int64_t>(
      static_cast<double>(params_.retry_timeout.ps) * scale)};
  m_retry_delay_ns_.record(delay.ps / 1000);
  engine_->schedule_in(delay,
                       [this, w = net::PooledMessage(std::move(wrapped))]() mutable {
                         resend_frame(w.take());
                       });
}

void BridgedTransport::resend_frame(net::Message&& wrapped) {
  auto* frame = net::cbp_frame(wrapped);
  DEEP_EXPECT(frame != nullptr, "CBP: malformed frame in retry path");
  GatewayState* gw = pick_gateway_for_retry(wrapped.src, frame->inner_dst);
  if (gw == nullptr) {
    // No gateway can take the frame right now: burn one attempt and back off
    // again.  The retry budget bounds this loop, so a permanently dead
    // bridge ends in a reported loss, never a hang.
    ++unrouted_retries_;
    retry_frame(std::move(wrapped));
    return;
  }
  gw->stats.retries += 1;
  m_retries_.add(1);
  if (frame->last_gateway != hw::kInvalidNode &&
      gw->node != frame->last_gateway) {
    gw->stats.failovers += 1;
    m_failovers_.add(1);
  }
  frame->last_gateway = gw->node;
  wrapped.dst = gw->node;
  const net::Service svc = frame->svc;
  fabric_for_side(side_of(wrapped.src) != Side::Booster)
      .send(std::move(wrapped), svc);
}

std::int64_t BridgedTransport::total_retries() const {
  std::int64_t n = unrouted_retries_;
  for (const auto& gw : gateways_) n += gw.stats.retries;
  return n;
}

std::int64_t BridgedTransport::total_failovers() const {
  std::int64_t n = 0;
  for (const auto& gw : gateways_) n += gw.stats.failovers;
  return n;
}

std::int64_t BridgedTransport::total_timeouts() const {
  std::int64_t n = 0;
  for (const auto& gw : gateways_) n += gw.stats.timeouts;
  return n;
}

void BridgedTransport::send(net::Message msg, net::Service svc) {
  const Side src_side = side_of(msg.src);
  const Side dst_side = side_of(msg.dst);

  // Same side (gateways are reachable from both): direct fabric delivery.
  const bool src_cluster = src_side != Side::Booster;
  const bool dst_cluster = dst_side != Side::Booster;
  if (src_side == Side::Gateway || dst_side == Side::Gateway ||
      src_side == dst_side) {
    // Pick the fabric both endpoints share; prefer the cluster fabric for
    // gateway-involved traffic on the cluster side.
    const bool use_cluster = src_cluster && dst_cluster;
    net::Fabric& fabric = fabric_for_side(use_cluster);
    DEEP_EXPECT(fabric.attached(msg.src) && fabric.attached(msg.dst),
                "BridgedTransport: endpoints not on a common fabric");
    fabric.send(std::move(msg), svc);
    return;
  }

  // Cross-fabric: wrap and route through a gateway on the source side.
  DEEP_EXPECT(!gateways_.empty(),
              "BridgedTransport: cross-fabric send with no gateways");
  // Flatten the inner message into the frame (metadata + wire header as
  // plain fields); its payload rides on the wrapped carrier directly.
  net::Message wrapped;
  wrapped.src = msg.src;
  wrapped.port = net::Port::Cbp;
  wrapped.size_bytes = msg.size_bytes + params_.frame_header_bytes;
  net::CbpFrame frame;
  frame.inner_src = msg.src;
  frame.inner_dst = msg.dst;
  frame.inner_port = msg.port;
  frame.inner_size_bytes = msg.size_bytes;
  if (const auto* wh = net::wire_header(msg)) {
    frame.inner_has_wire = true;
    frame.inner_wire = *wh;
  } else if (const auto* ih = net::io_header(msg)) {
    frame.inner_has_io = true;
    frame.inner_io = *ih;
  }
  frame.svc = svc;
  frame.attempts = 0;
  wrapped.payload = std::move(msg.payload);
  if (num_gateways_up() == 0) {
    // Every gateway is down right now: the frame cannot even start its
    // crossing.  It enters the retry path and waits for a heal; the bounded
    // budget turns a permanent outage into a reported loss, not a hang.
    frame.last_gateway = hw::kInvalidNode;
    wrapped.header = frame;
    retry_frame(std::move(wrapped));
    return;
  }
  GatewayState& gw = pick_gateway(msg.src, msg.dst);
  wrapped.dst = gw.node;
  frame.last_gateway = gw.node;
  wrapped.header = frame;
  fabric_for_side(src_side == Side::Cluster).send(std::move(wrapped), svc);
}

void BridgedTransport::forward(GatewayState& gw, net::Message&& wrapped) {
  if (!gw.up) {
    // The frame reached a dead gateway: its SMFU no longer acks, the sender
    // times out and the frame re-enters the retry path.
    gw.stats.timeouts += 1;
    m_timeouts_.add(1);
    retry_frame(std::move(wrapped));
    return;
  }
  auto* frame = net::cbp_frame(wrapped);
  DEEP_EXPECT(frame != nullptr, "CBP: malformed frame at gateway");
  const net::Service svc = frame->svc;
  net::Message inner = unwrap_frame(std::move(wrapped), *frame);

  // SMFU processing: store-and-forward latency + per-byte cost, serialised
  // per gateway.
  const sim::Duration processing =
      params_.smfu_latency +
      sim::from_seconds(static_cast<double>(wrapped.size_bytes) /
                        params_.smfu_bandwidth_bytes_per_sec);
  const sim::TimePoint start = std::max(engine_->now(), gw.smfu_free);
  const sim::TimePoint done = start + processing;
  gw.smfu_free = done;

  gw.stats.forwarded_messages += 1;
  gw.stats.forwarded_bytes += wrapped.size_bytes;
  m_forwarded_.add(1);
  m_forwarded_bytes_.add(wrapped.size_bytes);
  m_smfu_busy_ps_.add(processing.ps);
  m_smfu_wait_ns_.record((start - engine_->now()).ps / 1000);

  const bool dst_on_cluster = side_of(inner.dst) != Side::Booster;
  net::Fabric& out = fabric_for_side(dst_on_cluster);
  // Re-injected with the gateway as the wire-level source so the fabric
  // books contention on the gateway's links; the logical (MPI) source lives
  // in the protocol header.
  // Pooled slot keeps the capture at 24 bytes — inline in the event queue.
  const hw::NodeId gw_node = gw.node;
  engine_->schedule_at(
      done, [&out, gw_node, m = net::PooledMessage(std::move(inner)),
             svc]() mutable {
        net::Message inner = m.take();
        inner.src = gw_node;
        out.send(std::move(inner), svc);
      });
}

}  // namespace deep::cbp

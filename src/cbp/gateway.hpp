#pragma once
// Cluster-Booster Protocol (CBP) bridging.
//
// The DEEP machine joins two independent fabrics (slide 29): the cluster's
// InfiniBand and the booster's EXTOLL torus.  Booster Interface (BI) nodes
// sit on both and forward traffic between them; the EXTOLL SMFU engine is
// what makes this bridging possible on real hardware (slide 16).
//
// A cross-fabric message is wrapped in a CbpFrame, carried to a gateway on
// the source-side fabric, processed by the gateway's SMFU (store-and-forward
// latency + per-byte cost, serialised per gateway), and re-injected on the
// far fabric towards its final destination.

#include <cstdint>
#include <deque>

#include "cbp/transport.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace deep::cbp {

/// How a sender picks the gateway for a cross-fabric message.
enum class GatewayPolicy {
  ByPair,      // static: hash of (src,dst) — preserves per-pair ordering,
               // fails over to the next healthy gateway
  RoundRobin,  // spreads load; per-pair ordering NOT guaranteed by the wire
               // (the MPI endpoint reorders via sequence numbers)
  Pinned,      // static hash of (src,dst) with NO failover: a pair keeps
               // retrying its pinned gateway even while it is down (models
               // firmware routing tables that cannot be rewritten at runtime)
};

struct BridgeParams {
  sim::Duration smfu_latency = sim::from_nanos(600);  // frame processing
  double smfu_bandwidth_bytes_per_sec = 4.5e9;        // bridging throughput
  std::int64_t frame_header_bytes = 32;
  GatewayPolicy policy = GatewayPolicy::ByPair;

  // Fault handling: a frame that dies on the wire or hits a dead gateway is
  // retried after retry_timeout (the sender-side timeout), doubling per
  // attempt (backoff_factor), at most max_retries times; then the wrapped
  // message is reported lost to the MPI layer.
  sim::Duration retry_timeout = sim::from_micros(20);
  double backoff_factor = 2.0;
  int max_retries = 4;
};

/// Per-gateway forwarding statistics.
struct GatewayStats {
  std::int64_t forwarded_messages = 0;
  std::int64_t forwarded_bytes = 0;
  std::int64_t timeouts = 0;    // frames that found this gateway dead
  std::int64_t retries = 0;     // re-sent frames this gateway carried
  std::int64_t failovers = 0;   // retries that switched TO this gateway
};

/// The DEEP global interconnect: cluster fabric + booster fabric + BI
/// gateways.  Nodes must be registered on exactly one side; gateways are
/// attached to both fabrics by the caller before registration here.
class BridgedTransport final : public Transport {
 public:
  BridgedTransport(sim::Engine& engine, net::Fabric& cluster_fabric,
                   net::Fabric& booster_fabric, BridgeParams params = {});

  /// Declares `node` a cluster node (must already be attached to the
  /// cluster fabric).
  void register_cluster_node(hw::NodeId node);
  /// Declares `node` a booster node (must already be attached to the
  /// booster fabric).
  void register_booster_node(hw::NodeId node);
  /// Declares `node` a gateway (must be attached to BOTH fabrics); binds the
  /// CBP port handlers on both NICs.
  void register_gateway(hw::NodeId node);

  void send(net::Message msg, net::Service svc) override;
  net::Nic& home_nic(hw::NodeId node) override;

  std::size_t num_gateways() const { return gateways_.size(); }
  const GatewayStats& gateway_stats(hw::NodeId gateway) const;
  const BridgeParams& params() const { return params_; }

  /// Sums over all gateways (plus retries that could not be routed at all).
  std::int64_t total_retries() const;
  std::int64_t total_failovers() const;
  std::int64_t total_timeouts() const;
  /// Wrapped messages abandoned after max_retries (reported to the MPI
  /// layer as losses).
  std::int64_t frames_lost() const { return frames_lost_; }

  /// RAS: marks a gateway as failed (or repaired).  Subsequent cross-fabric
  /// traffic fails over to the remaining gateways; frames already in flight
  /// towards the failed gateway time out on arrival and re-enter the retry
  /// path (the real SMFU stops acking once the board faults).
  void set_gateway_up(hw::NodeId gateway, bool up);
  bool gateway_up(hw::NodeId gateway) const;
  std::size_t num_gateways_up() const;

  /// True if `node` lives on the cluster side (gateways count as both).
  bool on_cluster_side(hw::NodeId node) const;
  bool on_booster_side(hw::NodeId node) const;

 private:
  enum class Side : std::uint8_t { Cluster, Booster, Gateway };

  struct GatewayState {
    hw::NodeId node;
    sim::TimePoint smfu_free{};
    GatewayStats stats;
    bool up = true;
  };

  Side side_of(hw::NodeId node) const;
  GatewayState& pick_gateway(hw::NodeId src, hw::NodeId dst);
  /// Retry-path selection: may return a down gateway (Pinned) or nullptr
  /// (no healthy gateway right now) instead of throwing.
  GatewayState* pick_gateway_for_retry(hw::NodeId src, hw::NodeId dst);
  GatewayState* find_gateway(hw::NodeId node);
  void forward(GatewayState& gw, net::Message&& wrapped);
  /// Drop handler installed on both fabrics: retries CBP frames, reports
  /// naked MPI messages (same-side traffic, post-gateway legs) as lost.
  void on_fabric_drop(net::Message&& msg);
  /// Schedules a timed-out/dropped frame for re-send with backoff, or
  /// reports the wrapped message lost once retries are exhausted.
  void retry_frame(net::Message&& wrapped);
  void resend_frame(net::Message&& wrapped);
  net::Fabric& fabric_for_side(bool cluster_side) {
    return cluster_side ? *cluster_ : *booster_;
  }

  sim::Engine* engine_;
  net::Fabric* cluster_;
  net::Fabric* booster_;
  BridgeParams params_;
  std::unordered_map<hw::NodeId, Side> sides_;
  // deque: register_gateway hands out stable references to elements.
  std::deque<GatewayState> gateways_;
  std::size_t rr_next_ = 0;
  std::int64_t unrouted_retries_ = 0;  // retries while no gateway was up
  std::int64_t frames_lost_ = 0;
  // Metrics handles (null without a registry; see docs/observability.md).
  obs::Counter m_forwarded_;
  obs::Counter m_forwarded_bytes_;
  obs::Counter m_timeouts_;
  obs::Counter m_retries_;
  obs::Counter m_failovers_;
  obs::Counter m_frames_lost_;
  obs::Counter m_smfu_busy_ps_;     // SMFU occupancy (processing time booked)
  obs::Histogram m_smfu_wait_ns_;   // queueing behind the gateway's SMFU
  obs::Histogram m_retry_delay_ns_; // backoff delays of retried frames
};

}  // namespace deep::cbp

#pragma once
// Cluster-Booster Protocol (CBP) bridging.
//
// The DEEP machine joins two independent fabrics (slide 29): the cluster's
// InfiniBand and the booster's EXTOLL torus.  Booster Interface (BI) nodes
// sit on both and forward traffic between them; the EXTOLL SMFU engine is
// what makes this bridging possible on real hardware (slide 16).
//
// A cross-fabric message is wrapped in a CbpFrame, carried to a gateway on
// the source-side fabric, processed by the gateway's SMFU (store-and-forward
// latency + per-byte cost, serialised per gateway), and re-injected on the
// far fabric towards its final destination.

#include <cstdint>
#include <deque>

#include "cbp/transport.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace deep::cbp {

/// How a sender picks the gateway for a cross-fabric message.
enum class GatewayPolicy {
  ByPair,      // static: hash of (src,dst) — preserves per-pair ordering
  RoundRobin,  // spreads load; per-pair ordering NOT guaranteed by the wire
               // (the MPI endpoint reorders via sequence numbers)
};

struct BridgeParams {
  sim::Duration smfu_latency = sim::from_nanos(600);  // frame processing
  double smfu_bandwidth_bytes_per_sec = 4.5e9;        // bridging throughput
  std::int64_t frame_header_bytes = 32;
  GatewayPolicy policy = GatewayPolicy::ByPair;
};

/// Per-gateway forwarding statistics.
struct GatewayStats {
  std::int64_t forwarded_messages = 0;
  std::int64_t forwarded_bytes = 0;
};

/// The DEEP global interconnect: cluster fabric + booster fabric + BI
/// gateways.  Nodes must be registered on exactly one side; gateways are
/// attached to both fabrics by the caller before registration here.
class BridgedTransport final : public Transport {
 public:
  BridgedTransport(sim::Engine& engine, net::Fabric& cluster_fabric,
                   net::Fabric& booster_fabric, BridgeParams params = {});

  /// Declares `node` a cluster node (must already be attached to the
  /// cluster fabric).
  void register_cluster_node(hw::NodeId node);
  /// Declares `node` a booster node (must already be attached to the
  /// booster fabric).
  void register_booster_node(hw::NodeId node);
  /// Declares `node` a gateway (must be attached to BOTH fabrics); binds the
  /// CBP port handlers on both NICs.
  void register_gateway(hw::NodeId node);

  void send(net::Message msg, net::Service svc) override;
  net::Nic& home_nic(hw::NodeId node) override;

  std::size_t num_gateways() const { return gateways_.size(); }
  const GatewayStats& gateway_stats(hw::NodeId gateway) const;
  const BridgeParams& params() const { return params_; }

  /// RAS: marks a gateway as failed (or repaired).  Subsequent cross-fabric
  /// traffic fails over to the remaining gateways; in-flight frames already
  /// addressed to the failed gateway are still forwarded (link-level state
  /// survives in the real SMFU until the board is pulled).
  void set_gateway_up(hw::NodeId gateway, bool up);
  bool gateway_up(hw::NodeId gateway) const;
  std::size_t num_gateways_up() const;

  /// True if `node` lives on the cluster side (gateways count as both).
  bool on_cluster_side(hw::NodeId node) const;
  bool on_booster_side(hw::NodeId node) const;

 private:
  enum class Side : std::uint8_t { Cluster, Booster, Gateway };

  struct GatewayState {
    hw::NodeId node;
    sim::TimePoint smfu_free{};
    GatewayStats stats;
    bool up = true;
  };

  struct CbpFrame {
    net::Message inner;
    net::Service svc;
  };

  Side side_of(hw::NodeId node) const;
  GatewayState& pick_gateway(hw::NodeId src, hw::NodeId dst);
  void forward(GatewayState& gw, net::Message&& wrapped);
  net::Fabric& fabric_for_side(bool cluster_side) {
    return cluster_side ? *cluster_ : *booster_;
  }

  sim::Engine* engine_;
  net::Fabric* cluster_;
  net::Fabric* booster_;
  BridgeParams params_;
  std::unordered_map<hw::NodeId, Side> sides_;
  // deque: register_gateway hands out stable references to elements.
  std::deque<GatewayState> gateways_;
  std::size_t rr_next_ = 0;
};

}  // namespace deep::cbp

#pragma once
// Transport: the node-to-node sending interface the Global-MPI layer uses.
//
// A Transport hides which fabric (or sequence of fabrics) carries a message.
// DirectTransport wraps a single fabric; cbp::BridgedTransport implements
// the DEEP global interconnect (InfiniBand + EXTOLL joined by Booster-
// Interface gateways speaking the Cluster-Booster Protocol).

#include <functional>

#include "net/fabric.hpp"
#include "net/message.hpp"

namespace deep::cbp {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `msg` towards msg.dst; delivery happens on the destination
  /// node's home NIC at the modelled time.
  virtual void send(net::Message msg, net::Service svc) = 0;

  /// The NIC on which messages for `node` are delivered (for binding
  /// protocol handlers).
  virtual net::Nic& home_nic(hw::NodeId node) = 0;

  /// Installs the handler for messages the transport gives up on (dead
  /// links, exhausted gateway retries).  The MPI layer installs this to
  /// convert losses into request error codes; without one, losses are
  /// counted by the fabric and silently discarded.
  using LossHandler = std::function<void(net::Message&&)>;
  virtual void set_loss_handler(LossHandler handler) {
    loss_handler_ = std::move(handler);
  }

 protected:
  void report_loss(net::Message&& msg) {
    if (loss_handler_) loss_handler_(std::move(msg));
  }

  LossHandler loss_handler_;
};

/// Transport over one fabric; used by single-sided systems (cluster-only,
/// booster-only) and unit tests.
class DirectTransport final : public Transport {
 public:
  explicit DirectTransport(net::Fabric& fabric) : fabric_(&fabric) {}

  void send(net::Message msg, net::Service svc) override {
    fabric_->send(std::move(msg), svc);
  }

  net::Nic& home_nic(hw::NodeId node) override { return fabric_->nic(node); }

  void set_loss_handler(LossHandler handler) override {
    Transport::set_loss_handler(std::move(handler));
    // A single fabric offers no alternative path: every MPI drop is final.
    fabric_->set_drop_handler([this](net::Message&& msg) {
      if (msg.port == net::Port::Mpi) report_loss(std::move(msg));
    });
  }

 private:
  net::Fabric* fabric_;
};

}  // namespace deep::cbp

#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace deep::sim {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint32_t Tracer::track_id(const std::string& track) {
  const auto it = std::find(tracks_.begin(), tracks_.end(), track);
  if (it != tracks_.end())
    return static_cast<std::uint32_t>(it - tracks_.begin());
  tracks_.push_back(track);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::span(const std::string& track, const std::string& name,
                  TimePoint begin, TimePoint end, const std::string& category) {
  DEEP_EXPECT(end >= begin, "Tracer::span: end before begin");
  events_.push_back(
      Event{track_id(track), name, category, begin.ps, (end - begin).ps});
}

void Tracer::instant(const std::string& track, const std::string& name,
                     TimePoint t, const std::string& category) {
  events_.push_back(Event{track_id(track), name, category, t.ps, -1});
}

std::string Tracer::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata gives every track a readable label.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << escape(tracks_[i]) << "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    // Chrome expects microseconds; keep fractional precision.
    const double ts = static_cast<double>(e.begin_ps) * 1e-6;
    os << "{\"name\":\"" << escape(e.name) << "\",\"cat\":\""
       << escape(e.category.empty() ? "sim" : e.category)
       << "\",\"pid\":1,\"tid\":" << e.track << ",\"ts\":" << ts;
    if (e.dur_ps < 0) {
      os << ",\"ph\":\"i\",\"s\":\"t\"}";
    } else {
      os << ",\"ph\":\"X\",\"dur\":" << static_cast<double>(e.dur_ps) * 1e-6
         << "}";
    }
  }
  os << "]}";
  return os.str();
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw util::SimError("Tracer: cannot open '" + path + "'");
  file << to_chrome_json();
  if (!file) throw util::SimError("Tracer: write to '" + path + "' failed");
}

}  // namespace deep::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "sim/parallel.hpp"
#include "util/log.hpp"

namespace deep::sim {

thread_local Engine::ExecTls Engine::t_exec_;

// ---------------------------------------------------------------------------
// Process fiber scheduling
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::uint64_t id, std::uint32_t partition,
                 std::string name, std::function<void(Context&)> body)
    : engine_(engine),
      id_(id),
      partition_(partition),
      name_(std::move(name)),
      body_(std::move(body)) {}

Process::~Process() = default;

void Process::start_fiber() {
  fiber_.create(engine_.acquire_stack(), &Process::fiber_entry, this);
}

void Process::fiber_entry(void* arg) {
  auto* self = static_cast<Process*>(arg);
  Context ctx(self->engine_, *self);
  try {
    if (!self->kill_requested_) self->body_(ctx);
  } catch (const ProcessKilled&) {
    // Graceful teardown requested by the engine.
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->state_ = State::Finished;
  self->body_ = nullptr;  // release captured resources eagerly
  // cur_sched() resolves through the *running thread's* execution context,
  // so a fiber that last ran on a worker unwinds back to whichever scheduler
  // anchor resumed it (possibly the main thread during teardown).
  Fiber::switch_to(self->fiber_, self->engine_.cur_sched(),
                   /*terminating=*/true);
  // A terminated fiber is never resumed.
  std::abort();
}

void Process::run_slice() {
  DEEP_ASSERT(state_ == State::Runnable, "run_slice: process not runnable");
  resume_scheduled_ = false;
  engine_.m_fiber_switches_.add(1);
  Fiber::switch_to(engine_.cur_sched(), fiber_);
  if (state_ == State::Finished && fiber_.created())
    engine_.release_stack(fiber_.take_stack());
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Process::yield_to_engine() {
  Fiber::switch_to(fiber_, engine_.cur_sched());
  if (kill_requested_) throw ProcessKilled{};
}

void Process::wake() {
  if (state_ == State::Finished) return;
  DEEP_ASSERT(!engine_.parallel_run_ || engine_.cur_part().id == partition_,
              "Process::wake: cross-partition wake during a parallel run "
              "(deliver it through Engine::schedule_on)");
  DEEP_ASSERT(!engine_.speculating(),
              "Process::wake: process interaction inside a speculated tail "
              "(the event was wrongly marked replayable)");
  wake_pending_ = true;
  if (state_ == State::Waiting) engine_.schedule_resume(*this);
}

void Process::request_kill() {
  if (state_ == State::Finished) return;
  DEEP_ASSERT(!engine_.parallel_run_ || engine_.cur_part().id == partition_,
              "Process::request_kill: cross-partition kill during a parallel "
              "run (deliver it through Engine::schedule_on)");
  DEEP_ASSERT(!engine_.speculating(),
              "Process::request_kill: process interaction inside a speculated "
              "tail (the event was wrongly marked replayable)");
  kill_requested_ = true;
  // Reuse the wake path: a Waiting process gets a resume event at the
  // current time and unwinds (yield_to_engine throws ProcessKilled) when it
  // is dispatched; Sleeping/Runnable processes unwind at their already
  // scheduled resume point; a Created process skips its body entirely.
  wake();
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

void Context::delay(Duration d) {
  DEEP_EXPECT(d.ps >= 0, "Context::delay: negative duration");
  Process& p = *process_;
  p.state_ = Process::State::Sleeping;
  engine_->schedule_process(engine_->partition(p.partition_),
                            engine_->now() + d, EventKind::SleepExpiry, p);
  p.yield_to_engine();
  p.state_ = Process::State::Runnable;
}

void Context::suspend() {
  Process& p = *process_;
  if (p.wake_pending_) {
    p.wake_pending_ = false;
    return;
  }
  p.state_ = Process::State::Waiting;
  p.yield_to_engine();
  p.state_ = Process::State::Runnable;
  p.wake_pending_ = false;
}

bool Context::killed() const { return process_->kill_requested_; }

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine() = default;

Engine::~Engine() { kill_all_unfinished(); }

void Engine::schedule_local(Partition& part, TimePoint t, EventFn fn,
                            bool replayable) {
  DEEP_EXPECT(t >= part.now, "Engine::schedule_at: time in the past");
  const std::uint64_t key = part.make_key();
  part.queue.push(t, key, EventKind::Callback, nullptr, std::move(fn),
                  replayable);
  // A speculated tail remembers its local pushes so rollback can remove
  // them again (the re-executed tail re-creates them with the same keys).
  if (part.speculating) par_->spec[part.id].pushed.push_back(key);
}

void Engine::schedule_at(TimePoint t, EventFn fn) {
  schedule_local(cur_part(), t, std::move(fn), /*replayable=*/false);
}

void Engine::schedule_replayable_at(TimePoint t, EventFn fn) {
  schedule_local(cur_part(), t, std::move(fn), /*replayable=*/true);
}

void Engine::schedule_in(Duration d, EventFn fn) {
  schedule_at(now() + d, std::move(fn));
}

void Engine::schedule_remote(std::uint32_t p, TimePoint t, EventFn fn,
                             bool replayable) {
  Partition& dst = partition(p);
  if (!parallel_run_) {
    // Outside a parallel run everything is single-threaded: push straight
    // into the target partition's queue with its own key stream.
    DEEP_EXPECT(t >= dst.now, "Engine::schedule_on: time in the past");
    dst.queue.push(t, dst.make_key(), EventKind::Callback, nullptr,
                   std::move(fn), replayable);
    return;
  }
  Partition& src = cur_part();
  if (&src == &dst) {
    schedule_local(src, t, std::move(fn), replayable);
    return;
  }
  // Conservative correctness: the destination may already be executing
  // anywhere below its safe horizon, so the event must land at or beyond
  // it.  Holds by construction when the modelled src->dst latency is >= the
  // configured (src, dst) pair lookahead: the horizon is
  // min over peers s of (LB(s) + lookahead(s, dst)) <= now + lookahead.
  // dst.limit is written only during the plan step (all executors parked at
  // the barrier) and read-only during execution, so this read is safe.
  DEEP_EXPECT(t >= dst.limit,
              "Engine::schedule_on: cross-partition event inside the "
              "destination's safe window (latency below the configured "
              "lookahead)");
  // The key comes from the *source* stream at call time: heap order among
  // simultaneous events is then a pure function of the simulation, not of
  // which window (conservative or speculated) carried the event across.
  const std::uint64_t key = src.make_key();
  if (src.speculating) {
    // Staged: withheld from the destination until the tail validates at the
    // next plan step; a rollback destroys the send unsent.
    par_->spec[src.id].staged.push_back(ParallelState::SpecState::Staged{
        dst.id, t, key, replayable, std::move(fn)});
    return;
  }
  par_->ring(src.id, dst.id)
      .push(ParallelState::CrossEvent{t, key, replayable, std::move(fn)});
}

void Engine::schedule_on(std::uint32_t p, TimePoint t, EventFn fn) {
  schedule_remote(p, t, std::move(fn), /*replayable=*/false);
}

void Engine::schedule_replayable_on(std::uint32_t p, TimePoint t, EventFn fn) {
  schedule_remote(p, t, std::move(fn), /*replayable=*/true);
}

void Engine::schedule_on_after(std::uint32_t p, TimePoint t, EventFn fn) {
  if (parallel_run_) {
    Partition& dst = partition(p);
    if (&cur_part() != &dst && t < dst.limit) t = dst.limit;
  }
  schedule_on(p, t, std::move(fn));
}

void Engine::schedule_process(Partition& part, TimePoint t, EventKind kind,
                              Process& p) {
  part.queue.push(t, part.make_key(), kind, &p, EventFn{});
}

void Engine::set_metrics(obs::Registry* metrics) {
  metrics_ = metrics;
  if (metrics_) {
    m_events_ = metrics_->counter("sim.events");
    m_fiber_switches_ = metrics_->counter("sim.fiber_switches");
    m_stale_resumes_ = metrics_->counter("sim.stale_resumes");
    m_queue_depth_ = metrics_->gauge("sim.queue_depth");
    m_windows_ = metrics_->counter("sim.windows");
    m_solo_windows_ = metrics_->counter("sim.solo_windows");
    m_cross_events_ = metrics_->counter("sim.cross_events");
    m_window_events_ = metrics_->histogram("sim.window_events");
    m_speculated_events_ = metrics_->counter("sim.speculated_events");
    m_spec_commits_ = metrics_->counter("sim.commits");
    m_rollbacks_ = metrics_->counter("sim.rollbacks");
    m_rollback_events_ = metrics_->counter("sim.rollback_events");
  } else {
    m_events_ = {};
    m_fiber_switches_ = {};
    m_stale_resumes_ = {};
    m_queue_depth_ = {};
    m_windows_ = {};
    m_solo_windows_ = {};
    m_cross_events_ = {};
    m_window_events_ = {};
    m_speculated_events_ = {};
    m_spec_commits_ = {};
    m_rollbacks_ = {};
    m_rollback_events_ = {};
  }
  m_barrier_wait_.clear();
}

void Engine::set_fiber_stack_size(std::size_t bytes) {
  DEEP_EXPECT(processes_.empty(),
              "Engine::set_fiber_stack_size: must be called before spawn");
  stack_pool_.set_stack_size(bytes);
}

void Engine::set_partitions(std::uint32_t count) {
  DEEP_EXPECT(count >= 1 && count <= kMaxPartitions,
              "Engine::set_partitions: count out of range");
  DEEP_EXPECT(!running_, "Engine::set_partitions: engine is running");
  DEEP_EXPECT(processes_.empty() && part0_.queue.empty() && extra_.empty(),
              "Engine::set_partitions: must be called on an empty engine");
  for (std::uint32_t p = 1; p < count; ++p) {
    extra_.push_back(std::make_unique<Partition>());
    extra_.back()->id = p;
  }
  pair_la_.clear();  // sized per partition count
  par_.reset();      // sized per partition count; rebuilt on the next run
}

void Engine::set_workers(std::uint32_t workers) {
  DEEP_EXPECT(workers >= 1, "Engine::set_workers: need at least one worker");
  DEEP_EXPECT(!running_, "Engine::set_workers: engine is running");
  workers_ = workers;
}

void Engine::set_speculation(int k) {
  DEEP_EXPECT(k >= 0 || k == kAutoSpeculation,
              "Engine::set_speculation: K must be >= 0 (0 = conservative) or "
              "kAutoSpeculation");
  DEEP_EXPECT(!running_, "Engine::set_speculation: engine is running");
  speculation_ = k;
}

void Engine::set_lookahead(Duration lookahead) {
  DEEP_EXPECT(lookahead.ps >= 0, "Engine::set_lookahead: negative lookahead");
  DEEP_EXPECT(!running_, "Engine::set_lookahead: engine is running");
  lookahead_ = lookahead;
}

void Engine::set_lookahead(std::uint32_t src, std::uint32_t dst,
                           Duration lookahead) {
  const std::uint32_t P = partitions();
  DEEP_EXPECT(src < P && dst < P,
              "Engine::set_lookahead: partition index out of range");
  DEEP_EXPECT(lookahead.ps > 0,
              "Engine::set_lookahead: pair lookahead must be positive (use "
              "kUnconstrainedLookahead for pairs with no channel)");
  DEEP_EXPECT(!running_, "Engine::set_lookahead: engine is running");
  if (src == dst) return;  // a partition never constrains itself
  if (pair_la_.empty())
    pair_la_.assign(static_cast<std::size_t>(P) * P, -1);
  pair_la_[static_cast<std::size_t>(src) * P + dst] = lookahead.ps;
}

Duration Engine::lookahead(std::uint32_t src, std::uint32_t dst) const {
  const std::uint32_t P = partitions();
  if (src == dst || src >= P || dst >= P) return Duration{0};
  if (!pair_la_.empty()) {
    const std::int64_t v = pair_la_[static_cast<std::size_t>(src) * P + dst];
    if (v >= 0) return Duration{v};
  }
  return lookahead_.ps > 0 ? lookahead_ : Duration{0};
}

FiberStack Engine::acquire_stack() {
  std::lock_guard<std::mutex> lock(stack_mu_);
  return stack_pool_.acquire();
}

void Engine::release_stack(FiberStack stack) {
  std::lock_guard<std::mutex> lock(stack_mu_);
  stack_pool_.release(stack);
}

std::size_t Engine::events_executed() const {
  std::size_t total = part0_.events_executed;
  for (const auto& part : extra_) total += part->events_executed;
  return total;
}

Process& Engine::spawn(std::string name, std::function<void(Context&)> body) {
  return spawn_on(cur_part().id, std::move(name), std::move(body));
}

Process& Engine::spawn_on(std::uint32_t p, std::string name,
                          std::function<void(Context&)> body) {
  Partition& part = partition(p);
  DEEP_EXPECT(!parallel_run_ || cur_part().id == p,
              "Engine::spawn_on: cross-partition spawn during a parallel run");
  DEEP_EXPECT(!speculating(),
              "Engine::spawn_on: spawn inside a speculated tail (the event "
              "was wrongly marked replayable)");
  const std::uint64_t id =
      (static_cast<std::uint64_t>(p) << kPartitionShift) |
      part.next_local_pid++;
  auto proc = std::unique_ptr<Process>(
      new Process(*this, id, p, std::move(name), std::move(body)));
  Process& ref = *proc;
  {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    processes_.push_back(std::move(proc));
  }
  ref.start_fiber();
  ref.state_ = Process::State::Runnable;
  ref.resume_scheduled_ = true;
  schedule_process(part, part.now, EventKind::StartSlice, ref);
  return ref;
}

void Engine::schedule_resume(Process& p) {
  if (p.resume_scheduled_) return;
  p.resume_scheduled_ = true;
  Partition& part = partition(p.partition_);
  schedule_process(part, part.now, EventKind::Resume, p);
}

void Engine::dispatch_one(Partition& part) {
  EventQueue::Dispatched ev = part.queue.pop();
  part.now = ev.t;
  part.cur_key = ev.key;
  ++part.events_executed;
  m_events_.add(1);
  // Queue depth is sampled every 64th event: a gauge store per dispatch is
  // measurable on the cheapest fabric paths, and the decimation stays
  // deterministic because the event count is itself part of the replay.
  // Parallel runs sample at window commits instead (sim/parallel.cpp).
  if (!parallel_run_ && (part.events_executed & 63) == 0)
    m_queue_depth_.set(static_cast<std::int64_t>(part.queue.size()));
  switch (ev.kind) {
    case EventKind::Callback:
      ev.fn();
      break;
    case EventKind::StartSlice:
      if (!ev.proc->finished()) ev.proc->run_slice();
      break;
    case EventKind::Resume:
      if (ev.proc->state_ == Process::State::Waiting) {
        ev.proc->state_ = Process::State::Runnable;
        ev.proc->run_slice();
      } else {
        // The process got resumed through another path before this event
        // fired; the latched wake_pending_ covers the notification.
        ev.proc->resume_scheduled_ = false;
        m_stale_resumes_.add(1);
      }
      break;
    case EventKind::SleepExpiry:
      // Stale if the process was killed (or otherwise left Sleeping) first.
      if (ev.proc->state_ == Process::State::Sleeping) {
        ev.proc->state_ = Process::State::Runnable;
        ev.proc->run_slice();
      } else {
        m_stale_resumes_.add(1);
      }
      break;
  }
}

namespace {
/// Clears Engine::running_ even when a process body throws out of run().
struct RunningGuard {
  bool& flag;
  explicit RunningGuard(bool& f) : flag(f) { flag = true; }
  ~RunningGuard() { flag = false; }
};
}  // namespace

void Engine::run() {
  DEEP_EXPECT(!running_, "Engine::run: already running");
  {
    RunningGuard guard(running_);
    if (partitions() == 1) {
      while (!part0_.queue.empty()) dispatch_one(part0_);
    } else {
      run_windowed(TimePoint{}, /*bounded=*/false);
    }
  }
  check_deadlock_or_finish();
  kill_all_unfinished();
}

bool Engine::run_until(TimePoint t) {
  DEEP_EXPECT(!running_, "Engine::run_until: already running");
  bool remaining;
  {
    RunningGuard guard(running_);
    if (partitions() == 1) {
      while (!part0_.queue.empty() && part0_.queue.next_time() <= t)
        dispatch_one(part0_);
      if (part0_.now < t) part0_.now = t;
      remaining = !part0_.queue.empty();
    } else {
      remaining = run_windowed(t, /*bounded=*/true);
    }
  }
  if (!remaining) {
    // Same stuck-process reporting as run(); daemons stay alive because the
    // caller may schedule more events and continue.
    check_deadlock_or_finish();
    return false;
  }
  return true;
}

namespace {

const char* state_name(Process::State s) {
  switch (s) {
    case Process::State::Created:
      return "created";
    case Process::State::Runnable:
      return "runnable";
    case Process::State::Sleeping:
      return "sleeping";
    case Process::State::Waiting:
      return "waiting";
    case Process::State::Finished:
      return "finished";
  }
  return "?";
}

/// Human id: the bare local number for partition 0 (the historical format),
/// "p<partition>:<local>" elsewhere.
std::string proc_id_str(const Process& p) {
  const std::uint64_t local = p.id() & Engine::kSeqMask;
  if (p.partition() == 0) return std::to_string(local);
  std::string out = "p";
  out += std::to_string(p.partition());
  out += ':';
  out += std::to_string(local);
  return out;
}

}  // namespace

std::vector<Process*> Engine::processes_by_id() const {
  std::vector<Process*> procs;
  procs.reserve(processes_.size());
  for (const auto& p : processes_) procs.push_back(p.get());
  // Spawn order and id order coincide in serial runs; in partitioned runs
  // the vector order depends on mid-run spawn interleaving, so sort by the
  // partition-tagged id for a reproducible iteration order.
  std::sort(procs.begin(), procs.end(),
            [](const Process* a, const Process* b) { return a->id() < b->id(); });
  return procs;
}

void Engine::check_deadlock_or_finish() {
  // Two distinct "queue drained" outcomes: only daemons left (a normal end
  // of simulation — they are torn down or left idle by the caller) versus
  // non-daemon processes still blocked, which is a real deadlock.  The
  // report names every stuck process and, when the blocking layer set one,
  // what it was waiting for (e.g. an MPI recv whose peer died with a link).
  std::size_t stuck_count = 0;
  std::size_t daemons_alive = 0;
  std::ostringstream stuck;
  for (const Process* p : processes_by_id()) {
    if (p->finished()) continue;
    if (p->daemon()) {
      ++daemons_alive;
      continue;
    }
    ++stuck_count;
    stuck << "\n  " << p->name() << " (id=" << proc_id_str(*p) << ", "
          << state_name(p->state()) << ')';
    if (!p->block_note().empty()) stuck << ": blocked on " << p->block_note();
  }
  if (stuck_count > 0) {
    kill_all_unfinished();
    std::ostringstream msg;
    msg << "simulation deadlock: event queue drained with " << stuck_count
        << " process(es) still blocked";
    if (daemons_alive > 0)
      msg << " (" << daemons_alive
          << " daemon(s) alive and idle, which alone would be a normal end)";
    msg << ':' << stuck.str();
    throw util::SimError(msg.str());
  }
}

void Engine::kill_all_unfinished() {
  for (Process* p : processes_by_id()) {
    if (p->finished() || !p->fiber_.created()) continue;
    // Enter the process's partition context: the final slice must unwind
    // back to that partition's scheduler anchor, record into its metrics
    // lane, and see its clock — even though teardown runs on the main
    // thread for fibers that last executed on a worker.
    ExecScope scope(this, &partition(p->partition_));
    p->kill_requested_ = true;
    // Hand the fiber one final slice so yield_to_engine() throws
    // ProcessKilled and the stack unwinds.
    p->state_ = Process::State::Runnable;
    p->run_slice();
    DEEP_ASSERT(p->finished(), "kill: process failed to unwind");
  }
}

}  // namespace deep::sim

#include "sim/engine.hpp"

#include <sstream>

#include "util/log.hpp"

namespace deep::sim {

// ---------------------------------------------------------------------------
// Process fiber scheduling
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 std::function<void(Context&)> body)
    : engine_(engine), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() = default;

void Process::start_fiber() {
  fiber_.create(engine_.stack_pool_.acquire(), &Process::fiber_entry, this);
}

void Process::fiber_entry(void* arg) {
  auto* self = static_cast<Process*>(arg);
  Context ctx(self->engine_, *self);
  try {
    if (!self->kill_requested_) self->body_(ctx);
  } catch (const ProcessKilled&) {
    // Graceful teardown requested by the engine.
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->state_ = State::Finished;
  self->body_ = nullptr;  // release captured resources eagerly
  Fiber::switch_to(self->fiber_, self->engine_.sched_fiber_,
                   /*terminating=*/true);
  // A terminated fiber is never resumed.
  std::abort();
}

void Process::run_slice() {
  DEEP_ASSERT(state_ == State::Runnable, "run_slice: process not runnable");
  resume_scheduled_ = false;
  engine_.m_fiber_switches_.add(1);
  Fiber::switch_to(engine_.sched_fiber_, fiber_);
  if (state_ == State::Finished && fiber_.created())
    engine_.stack_pool_.release(fiber_.take_stack());
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Process::yield_to_engine() {
  Fiber::switch_to(fiber_, engine_.sched_fiber_);
  if (kill_requested_) throw ProcessKilled{};
}

void Process::wake() {
  if (state_ == State::Finished) return;
  wake_pending_ = true;
  if (state_ == State::Waiting) engine_.schedule_resume(*this);
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

void Context::delay(Duration d) {
  DEEP_EXPECT(d.ps >= 0, "Context::delay: negative duration");
  Process& p = *process_;
  p.state_ = Process::State::Sleeping;
  engine_->schedule_process(engine_->now_ + d, EventKind::SleepExpiry, p);
  p.yield_to_engine();
  p.state_ = Process::State::Runnable;
}

void Context::suspend() {
  Process& p = *process_;
  if (p.wake_pending_) {
    p.wake_pending_ = false;
    return;
  }
  p.state_ = Process::State::Waiting;
  p.yield_to_engine();
  p.state_ = Process::State::Runnable;
  p.wake_pending_ = false;
}

bool Context::killed() const { return process_->kill_requested_; }

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::~Engine() { kill_all_unfinished(); }

void Engine::schedule_at(TimePoint t, EventFn fn) {
  DEEP_EXPECT(t >= now_, "Engine::schedule_at: time in the past");
  queue_.push(t, next_seq_++, EventKind::Callback, nullptr, std::move(fn));
}

void Engine::schedule_in(Duration d, EventFn fn) {
  schedule_at(now_ + d, std::move(fn));
}

void Engine::schedule_process(TimePoint t, EventKind kind, Process& p) {
  queue_.push(t, next_seq_++, kind, &p, EventFn{});
}

void Engine::set_metrics(obs::Registry* metrics) {
  metrics_ = metrics;
  if (metrics_) {
    m_events_ = metrics_->counter("sim.events");
    m_fiber_switches_ = metrics_->counter("sim.fiber_switches");
    m_stale_resumes_ = metrics_->counter("sim.stale_resumes");
    m_queue_depth_ = metrics_->gauge("sim.queue_depth");
  } else {
    m_events_ = {};
    m_fiber_switches_ = {};
    m_stale_resumes_ = {};
    m_queue_depth_ = {};
  }
}

void Engine::set_fiber_stack_size(std::size_t bytes) {
  DEEP_EXPECT(processes_.empty(),
              "Engine::set_fiber_stack_size: must be called before spawn");
  stack_pool_.set_stack_size(bytes);
}

Process& Engine::spawn(std::string name, std::function<void(Context&)> body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, next_proc_id_++, std::move(name), std::move(body)));
  Process& p = *proc;
  processes_.push_back(std::move(proc));
  p.start_fiber();
  p.state_ = Process::State::Runnable;
  p.resume_scheduled_ = true;
  schedule_process(now_, EventKind::StartSlice, p);
  return p;
}

void Engine::schedule_resume(Process& p) {
  if (p.resume_scheduled_) return;
  p.resume_scheduled_ = true;
  schedule_process(now_, EventKind::Resume, p);
}

void Engine::dispatch_one() {
  EventQueue::Dispatched ev = queue_.pop();
  now_ = ev.t;
  ++events_executed_;
  m_events_.add(1);
  // Queue depth is sampled every 64th event: a gauge store per dispatch is
  // measurable on the cheapest fabric paths, and the decimation stays
  // deterministic because the event count is itself part of the replay.
  if ((events_executed_ & 63) == 0)
    m_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  switch (ev.kind) {
    case EventKind::Callback:
      ev.fn();
      break;
    case EventKind::StartSlice:
      if (!ev.proc->finished()) ev.proc->run_slice();
      break;
    case EventKind::Resume:
      if (ev.proc->state_ == Process::State::Waiting) {
        ev.proc->state_ = Process::State::Runnable;
        ev.proc->run_slice();
      } else {
        // The process got resumed through another path before this event
        // fired; the latched wake_pending_ covers the notification.
        ev.proc->resume_scheduled_ = false;
        m_stale_resumes_.add(1);
      }
      break;
    case EventKind::SleepExpiry:
      // Stale if the process was killed (or otherwise left Sleeping) first.
      if (ev.proc->state_ == Process::State::Sleeping) {
        ev.proc->state_ = Process::State::Runnable;
        ev.proc->run_slice();
      } else {
        m_stale_resumes_.add(1);
      }
      break;
  }
}

namespace {
/// Clears Engine::running_ even when a process body throws out of run().
struct RunningGuard {
  bool& flag;
  explicit RunningGuard(bool& f) : flag(f) { flag = true; }
  ~RunningGuard() { flag = false; }
};
}  // namespace

void Engine::run() {
  DEEP_EXPECT(!running_, "Engine::run: already running");
  {
    RunningGuard guard(running_);
    while (!queue_.empty()) dispatch_one();
  }
  check_deadlock_or_finish();
  kill_all_unfinished();
}

bool Engine::run_until(TimePoint t) {
  DEEP_EXPECT(!running_, "Engine::run_until: already running");
  {
    RunningGuard guard(running_);
    while (!queue_.empty() && queue_.next_time() <= t) dispatch_one();
  }
  if (now_ < t) now_ = t;
  if (queue_.empty()) {
    // Same stuck-process reporting as run(); daemons stay alive because the
    // caller may schedule more events and continue.
    check_deadlock_or_finish();
    return false;
  }
  return true;
}

namespace {

const char* state_name(Process::State s) {
  switch (s) {
    case Process::State::Created:
      return "created";
    case Process::State::Runnable:
      return "runnable";
    case Process::State::Sleeping:
      return "sleeping";
    case Process::State::Waiting:
      return "waiting";
    case Process::State::Finished:
      return "finished";
  }
  return "?";
}

}  // namespace

void Engine::check_deadlock_or_finish() {
  // Two distinct "queue drained" outcomes: only daemons left (a normal end
  // of simulation — they are torn down or left idle by the caller) versus
  // non-daemon processes still blocked, which is a real deadlock.  The
  // report names every stuck process and, when the blocking layer set one,
  // what it was waiting for (e.g. an MPI recv whose peer died with a link).
  std::size_t stuck_count = 0;
  std::size_t daemons_alive = 0;
  std::ostringstream stuck;
  for (const auto& p : processes_) {
    if (p->finished()) continue;
    if (p->daemon()) {
      ++daemons_alive;
      continue;
    }
    ++stuck_count;
    stuck << "\n  " << p->name() << " (id=" << p->id() << ", "
          << state_name(p->state()) << ')';
    if (!p->block_note().empty()) stuck << ": blocked on " << p->block_note();
  }
  if (stuck_count > 0) {
    kill_all_unfinished();
    std::ostringstream msg;
    msg << "simulation deadlock: event queue drained with " << stuck_count
        << " process(es) still blocked";
    if (daemons_alive > 0)
      msg << " (" << daemons_alive
          << " daemon(s) alive and idle, which alone would be a normal end)";
    msg << ':' << stuck.str();
    throw util::SimError(msg.str());
  }
}

void Engine::kill_all_unfinished() {
  for (const auto& p : processes_) {
    if (p->finished() || !p->fiber_.created()) continue;
    p->kill_requested_ = true;
    // Hand the fiber one final slice so yield_to_engine() throws
    // ProcessKilled and the stack unwinds.
    p->state_ = Process::State::Runnable;
    p->run_slice();
    DEEP_ASSERT(p->finished(), "kill: process failed to unwind");
  }
}

}  // namespace deep::sim

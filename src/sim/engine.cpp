#include "sim/engine.hpp"

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/log.hpp"

namespace deep::sim {

// ---------------------------------------------------------------------------
// Process hand-shake
// ---------------------------------------------------------------------------

struct Process::Handshake {
  std::mutex m;
  std::condition_variable cv;
  enum class Turn { Engine, Process } turn = Turn::Engine;
  bool thread_started = false;
  bool thread_done = false;
  std::thread thread;
};

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 std::function<void(Context&)> body)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      hs_(std::make_unique<Handshake>()) {}

Process::~Process() {
  if (hs_ && hs_->thread.joinable()) hs_->thread.join();
}

void Process::start_thread() {
  hs_->thread = std::thread([this] {
    {
      // Wait for the engine to give us the first slice.
      std::unique_lock lk(hs_->m);
      hs_->cv.wait(lk, [this] { return hs_->turn == Handshake::Turn::Process; });
    }
    Context ctx(engine_, *this);
    try {
      if (!kill_requested_) body_(ctx);
    } catch (const ProcessKilled&) {
      // Graceful teardown requested by the engine.
    } catch (...) {
      error_ = std::current_exception();
    }
    finish_from_thread();
  });
  hs_->thread_started = true;
}

void Process::run_slice() {
  DEEP_ASSERT(state_ == State::Runnable, "run_slice: process not runnable");
  resume_scheduled_ = false;
  {
    std::unique_lock lk(hs_->m);
    hs_->turn = Handshake::Turn::Process;
    hs_->cv.notify_all();
    hs_->cv.wait(lk, [this] { return hs_->turn == Handshake::Turn::Engine; });
  }
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Process::yield_to_engine() {
  std::unique_lock lk(hs_->m);
  hs_->turn = Handshake::Turn::Engine;
  hs_->cv.notify_all();
  hs_->cv.wait(lk, [this] { return hs_->turn == Handshake::Turn::Process; });
  if (kill_requested_) throw ProcessKilled{};
}

void Process::finish_from_thread() noexcept {
  std::unique_lock lk(hs_->m);
  state_ = State::Finished;
  hs_->thread_done = true;
  hs_->turn = Handshake::Turn::Engine;
  hs_->cv.notify_all();
}

void Process::wake() {
  if (state_ == State::Finished) return;
  if (state_ == State::Waiting) {
    wake_pending_ = true;
    engine_.schedule_resume(*this);
  } else {
    wake_pending_ = true;
  }
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

void Context::delay(Duration d) {
  DEEP_EXPECT(d.ps >= 0, "Context::delay: negative duration");
  Process& p = *process_;
  p.state_ = Process::State::Sleeping;
  engine_->schedule_in(d, [&p] {
    // A sleep expiry resumes unconditionally (it is not a wake()).
    p.state_ = Process::State::Runnable;
    p.run_slice();
  });
  p.yield_to_engine();
  p.state_ = Process::State::Runnable;
}

void Context::suspend() {
  Process& p = *process_;
  if (p.wake_pending_) {
    p.wake_pending_ = false;
    return;
  }
  p.state_ = Process::State::Waiting;
  p.yield_to_engine();
  p.state_ = Process::State::Runnable;
  p.wake_pending_ = false;
}

bool Context::killed() const { return process_->kill_requested_; }

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::~Engine() { kill_all_unfinished(); }

void Engine::schedule_at(TimePoint t, std::function<void()> fn) {
  DEEP_EXPECT(t >= now_, "Engine::schedule_at: time in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(Duration d, std::function<void()> fn) {
  schedule_at(now_ + d, std::move(fn));
}

Process& Engine::spawn(std::string name, std::function<void(Context&)> body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, next_proc_id_++, std::move(name), std::move(body)));
  Process& p = *proc;
  processes_.push_back(std::move(proc));
  p.start_thread();
  p.state_ = Process::State::Runnable;
  p.resume_scheduled_ = true;
  schedule_at(now_, [&p] { p.run_slice(); });
  return p;
}

void Engine::schedule_resume(Process& p) {
  if (p.resume_scheduled_) return;
  p.resume_scheduled_ = true;
  schedule_at(now_, [&p] {
    if (p.state_ == Process::State::Waiting) {
      p.state_ = Process::State::Runnable;
      p.run_slice();
    } else {
      // The process got resumed by other means (e.g. sleep expiry) before
      // this event fired; the latched wake_pending_ covers it.
      p.resume_scheduled_ = false;
    }
  });
}

void Engine::dispatch_one() {
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++events_executed_;
  ev.fn();
}

void Engine::run() {
  DEEP_EXPECT(!running_, "Engine::run: already running");
  running_ = true;
  while (!queue_.empty()) dispatch_one();
  running_ = false;
  check_deadlock_or_finish();
  kill_all_unfinished();
}

bool Engine::run_until(TimePoint t) {
  DEEP_EXPECT(!running_, "Engine::run_until: already running");
  running_ = true;
  while (!queue_.empty() && queue_.top().t <= t) dispatch_one();
  running_ = false;
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

void Engine::check_deadlock_or_finish() {
  std::ostringstream stuck;
  bool deadlock = false;
  for (const auto& p : processes_) {
    if (p->finished() || p->daemon()) continue;
    deadlock = true;
    stuck << ' ' << p->name() << "(id=" << p->id() << ')';
  }
  if (deadlock) {
    kill_all_unfinished();
    throw util::SimError(
        "simulation deadlock: event queue empty but processes still waiting:" +
        stuck.str());
  }
}

void Engine::kill_all_unfinished() {
  for (const auto& p : processes_) {
    if (p->finished() || !p->hs_->thread_started) continue;
    p->kill_requested_ = true;
    // Hand the thread one final slice so yield_to_engine() throws
    // ProcessKilled and the stack unwinds.
    p->state_ = Process::State::Runnable;
    p->run_slice();
    DEEP_ASSERT(p->finished(), "kill: process failed to unwind");
  }
}

}  // namespace deep::sim

#pragma once
// Virtual time for the discrete-event engine.
//
// Time is held as an integer count of picoseconds.  Integer arithmetic keeps
// event ordering exact and simulations bit-reproducible across platforms;
// 2^63 ps is ~106 days of simulated time, far beyond any experiment here.

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace deep::sim {

/// A span of virtual time (may be zero; never negative in normal use).
struct Duration {
  std::int64_t ps = 0;

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return {ps + o.ps}; }
  constexpr Duration operator-(Duration o) const { return {ps - o.ps}; }
  constexpr Duration& operator+=(Duration o) {
    ps += o.ps;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ps -= o.ps;
    return *this;
  }
  constexpr Duration operator*(std::int64_t k) const { return {ps * k}; }

  constexpr double seconds() const { return static_cast<double>(ps) * 1e-12; }
  constexpr double millis() const { return static_cast<double>(ps) * 1e-9; }
  constexpr double micros() const { return static_cast<double>(ps) * 1e-6; }
  constexpr double nanos() const { return static_cast<double>(ps) * 1e-3; }

  std::string str() const;
};

/// An absolute point on the virtual-time axis.
struct TimePoint {
  std::int64_t ps = 0;

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return {ps + d.ps}; }
  constexpr TimePoint operator-(Duration d) const { return {ps - d.ps}; }
  constexpr Duration operator-(TimePoint o) const { return {ps - o.ps}; }

  constexpr double seconds() const { return static_cast<double>(ps) * 1e-12; }
  constexpr double micros() const { return static_cast<double>(ps) * 1e-6; }

  std::string str() const;
};

constexpr Duration picoseconds(std::int64_t v) { return {v}; }
constexpr Duration nanoseconds(std::int64_t v) { return {v * 1000}; }
constexpr Duration microseconds(std::int64_t v) { return {v * 1000 * 1000}; }
constexpr Duration milliseconds(std::int64_t v) {
  return {v * 1000 * 1000 * 1000};
}
constexpr Duration seconds_i(std::int64_t v) {
  return {v * 1000 * 1000 * 1000 * 1000};
}

/// Converts a floating-point duration in seconds, rounding up so that a
/// positive physical duration never becomes a zero virtual duration.
constexpr Duration from_seconds(double sec) {
  const double ps = sec * 1e12;
  const auto floor_ps = static_cast<std::int64_t>(ps);
  return {ps > static_cast<double>(floor_ps) ? floor_ps + 1 : floor_ps};
}

constexpr Duration from_micros(double us) { return from_seconds(us * 1e-6); }
constexpr Duration from_nanos(double ns) { return from_seconds(ns * 1e-9); }

inline std::string Duration::str() const {
  char buf[48];
  const double abs_ps = ps < 0 ? -static_cast<double>(ps) : static_cast<double>(ps);
  if (abs_ps < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps));
  } else if (abs_ps < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f ns", nanos());
  } else if (abs_ps < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f us", micros());
  } else if (abs_ps < 1e12) {
    std::snprintf(buf, sizeof buf, "%.3f ms", millis());
  } else {
    std::snprintf(buf, sizeof buf, "%.4f s", seconds());
  }
  return buf;
}

inline std::string TimePoint::str() const { return Duration{ps}.str(); }

}  // namespace deep::sim

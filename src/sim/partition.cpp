#include "sim/partition.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace deep::sim {

std::vector<std::uint32_t> partition_graph(const PartitionGraph& graph,
                                           std::uint32_t parts) {
  const std::size_t n = graph.vertices;
  DEEP_EXPECT(parts >= 1, "partition_graph: parts must be >= 1");
  DEEP_EXPECT(parts <= n, "partition_graph: more parts than vertices");

  // Adjacency, deduplicated and sorted so growth order is deterministic.
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [a, b] : graph.edges) {
    DEEP_EXPECT(a < n && b < n, "partition_graph: edge endpoint out of range");
    if (a == b) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }

  constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;
  std::vector<std::uint32_t> block(n, kUnassigned);
  std::size_t assigned = 0;
  std::size_t next_seed = 0;

  for (std::uint32_t b = 0; b < parts; ++b) {
    // Balanced target for this block given what remains.
    const std::size_t remaining = n - assigned;
    const std::uint32_t blocks_left = parts - b;
    const std::size_t target = (remaining + blocks_left - 1) / blocks_left;

    // Grow from the lowest unassigned vertex, absorbing the lowest-id
    // frontier vertex first (an ordered set doubles as the BFS frontier).
    while (next_seed < n && block[next_seed] != kUnassigned) ++next_seed;
    DEEP_ASSERT(next_seed < n, "partition_graph: seed exhausted early");
    std::set<std::size_t> frontier{next_seed};
    std::size_t grown = 0;
    while (grown < target) {
      std::size_t v;
      if (!frontier.empty()) {
        v = *frontier.begin();
        frontier.erase(frontier.begin());
      } else {
        // Disconnected remainder: restart from the lowest unassigned vertex.
        std::size_t seek = next_seed;
        while (seek < n && block[seek] != kUnassigned) ++seek;
        DEEP_ASSERT(seek < n, "partition_graph: ran out of vertices");
        v = seek;
      }
      if (block[v] != kUnassigned) continue;
      block[v] = b;
      ++grown;
      ++assigned;
      for (const std::size_t nb : adj[v])
        if (block[nb] == kUnassigned) frontier.insert(nb);
    }
  }
  DEEP_ASSERT(assigned == n, "partition_graph: incomplete assignment");
  return block;
}

}  // namespace deep::sim

#pragma once
// Execution tracing.
//
// A Tracer records spans (named intervals on a named track) and instant
// events during a simulation and exports them in the Chrome trace-event
// format, loadable in chrome://tracing or Perfetto.  Tracks map naturally to
// nodes/processes: compute bursts, OmpSs tasks and message deliveries each
// show up on their own timeline.
//
// Attach a Tracer to the Engine (engine.set_tracer) and the instrumented
// layers (hw::Node::compute, ompss::Runtime, net::Fabric) record into it;
// tracing costs nothing when no tracer is attached.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace deep::sim {

class Tracer {
 public:
  virtual ~Tracer() = default;

  /// Records a completed interval [begin, end] on `track`.  Virtual so the
  /// parallel engine can interpose a per-partition buffering tracer that
  /// commits records in canonical order (docs/parallel_engine.md); direct
  /// Tracer use is unaffected.
  virtual void span(const std::string& track, const std::string& name,
                    TimePoint begin, TimePoint end,
                    const std::string& category = "");

  /// Records a point event.
  virtual void instant(const std::string& track, const std::string& name,
                       TimePoint t, const std::string& category = "");

  std::size_t num_events() const { return events_.size(); }

  /// Renders the Chrome trace-event JSON document.
  std::string to_chrome_json() const;

  /// Writes the JSON to a file; throws util::SimError on I/O failure.
  void write_chrome_json(const std::string& path) const;

 private:
  struct Event {
    std::uint32_t track;
    std::string name;
    std::string category;
    std::int64_t begin_ps;
    std::int64_t dur_ps;  // <0 marks an instant event
  };

  std::uint32_t track_id(const std::string& track);

  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

}  // namespace deep::sim

#pragma once
// Typed blocking mailbox connecting events/processes to a consuming process.
//
// push() may be called from anywhere (event callbacks, other processes);
// receive() must be called from the single consuming process, which blocks in
// virtual time until an item is available.

#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace deep::sim {

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues an item and wakes the consumer if it is blocked in receive().
  void push(T item) {
    queue_.push_back(std::move(item));
    if (consumer_ != nullptr) consumer_->wake();
  }

  /// Blocks the calling process until an item arrives, then returns it.
  T receive(Context& ctx) {
    claim_consumer(ctx);
    while (queue_.empty()) ctx.suspend();
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Non-blocking: returns the next item if one is queued.
  std::optional<T> try_receive(Context& ctx) {
    claim_consumer(ctx);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  void claim_consumer(Context& ctx) {
    if (consumer_ == nullptr) consumer_ = &ctx.process();
    DEEP_EXPECT(consumer_ == &ctx.process(),
                "Mailbox: single-consumer only; second process tried to receive");
  }

  std::deque<T> queue_;
  Process* consumer_ = nullptr;
};

}  // namespace deep::sim

#pragma once
// Lightweight statistics accumulators used by fabrics, runtimes and benches.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace deep::sim {

/// Online min/max/mean/stddev accumulator (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Folds another accumulator in (Chan et al. parallel Welford update), as
  /// if every sample added to `other` had been added here.  Used to combine
  /// per-partition shards kept by partition-aware fabrics.
  void merge(const Summary& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ += delta * nb / (na + nb);
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Monotonic counter bundle for network/runtime bookkeeping.
struct Counter {
  std::int64_t value = 0;
  void inc(std::int64_t by = 1) { value += by; }
};

}  // namespace deep::sim

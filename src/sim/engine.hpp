#pragma once
// Discrete-event simulation engine with cooperative actor processes.
//
// Model
// -----
// The engine owns pooled event queues of (time, key, payload) events and a
// set of Processes.  Each Process runs user code on its own *fiber* — a
// stackful userspace context (ucontext) owned by the engine — and a
// scheduler switches into exactly one fiber of a partition at a time.
// Together with the key tie-break this makes every simulation fully
// deterministic.  A fiber switch is a register swap (~100 ns), not a kernel
// round-trip, so simulations with tens of thousands of concurrent processes
// are practical.
//
// Fiber stacks default to 256 KiB (pages committed lazily) and are recycled
// through a free-list pool when processes finish; tune with
// Engine::set_fiber_stack_size() *before* the first spawn if process bodies
// need deeper stacks.
//
// Each event queue is a 4-ary implicit heap of small (time, key, slot)
// entries over a free-list slot pool (sim/event.hpp).  Callbacks are stored
// in a small-buffer-optimized EventFn (no heap allocation for captures up to
// 48 bytes), and process bookkeeping events — spawn slices, wake resumes,
// sleep expiries — carry just a tagged Process pointer.  Each such event is
// validated against the process's current state when dispatched, so an event
// that went stale (process killed, or already resumed through another path)
// is dropped instead of misfiring.
//
// Blocking primitives available to process code (via Context):
//   * delay(d)   — advance this process's local time by exactly d,
//   * suspend()  — park until some event calls Process::wake(),
//   * engine().schedule_in(...) — plain event callbacks (run on the engine).
//
// wake() on a running/sleeping process is remembered (binary semaphore), so
// the canonical wait loop `while (!pred()) ctx.suspend();` never loses a
// notification.  A wake delivered during delay() never shortens the sleep:
// it is latched and consumed by the next suspend().
//
// Teardown: the engine unwinds unfinished processes by throwing
// ProcessKilled through their fiber (run() does this for daemons once the
// queue drains; the destructor for everything else), so stack objects in
// process bodies are destroyed deterministically.
//
// Parallel execution (docs/parallel_engine.md)
// --------------------------------------------
// By default the engine is single-partition and strictly single-threaded —
// the historical behaviour, bit-for-bit.  set_partitions(P) splits the
// simulation into P partitions, each with its own event queue, sequence
// stream and scheduler fiber; spawn_on()/schedule_on() place work on a
// partition.  Within a partition everything above still holds.  Across
// partitions the engine runs a *conservative* parallel schedule: each
// partition executes events below a per-partition safe horizon during which
// no other partition can affect it, so any interleaving of partition
// execution — one worker thread or eight — produces the identical
// simulation.  The horizons derive from a per-(src, dst)-pair lookahead
// matrix (the minimum virtual latency of any src->dst channel, supplied by
// the fabric layer via set_lookahead(src, dst, d); a single global
// set_lookahead(d) fills every pair) through a min-plus fixed point — see
// docs/parallel_engine.md for the protocol and its safety argument.
// Cross-partition events are exchanged through per-pair SPSC queues,
// re-keyed and committed in canonical (time, key) order at window barriers.
// Event keys are partition-tagged ((partition << 40) | seq), so partition 0
// of a partitioned run and a plain serial run use the very same key values.
//
// Thread-safety contract: user code never needs locks — process bodies,
// NIC handlers and event callbacks run on exactly one thread per window,
// and everything a partition touches (its processes, its fabrics) must be
// owned by that partition.  Cross-partition interaction goes through
// schedule_on() (at or beyond the current window's end) — never through
// direct calls into another partition's objects.  Process::wake() may only
// be called from the process's own partition (or from outside a run).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"
#include "util/lane.hpp"

namespace deep::sim {

class Engine;
class Process;
class Tracer;

/// Pair-lookahead sentinel for partitions that share no channel: such pairs
/// never constrain each other's safe windows.
inline constexpr Duration kUnconstrainedLookahead{INT64_MAX};

/// Handle passed to process bodies; the only way user code talks to the
/// engine from inside a process.
class Context {
 public:
  Context(Engine& engine, Process& process)
      : engine_(&engine), process_(&process) {}

  Engine& engine() const { return *engine_; }
  Process& process() const { return *process_; }

  TimePoint now() const;

  /// Advances this process's local time by exactly `d`.  Other events run in
  /// between; wake() calls received while sleeping are remembered.
  void delay(Duration d);

  /// Parks until Process::wake() is called (returns immediately if a wake is
  /// already pending).  Use in a predicate re-check loop.
  void suspend();

  /// Cooperative cancellation: true once the engine asked us to die.
  bool killed() const;

 private:
  Engine* engine_;
  Process* process_;
};

/// Thrown inside a process body when the engine tears it down; the process
/// trampoline catches it.  Do not catch it in user code.
struct ProcessKilled {};

/// A simulated sequential activity (an MPI rank, an OmpSs worker, a device
/// engine).  Created via Engine::spawn(); lifetime managed by the engine.
class Process {
 public:
  enum class State {
    Created,   // spawned, body not yet entered
    Runnable,  // has a resume event queued (or is currently running)
    Sleeping,  // inside delay()
    Waiting,   // inside suspend()
    Finished,  // body returned or threw
  };

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::Finished; }

  /// The partition this process lives on (0 unless spawned via spawn_on).
  std::uint32_t partition() const { return partition_; }

  /// Marks this process as a daemon: the simulation is allowed to end while
  /// it is still waiting (it is then torn down gracefully).
  void set_daemon(bool daemon) { daemon_ = daemon; }
  bool daemon() const { return daemon_; }

  /// Delivers a wake-up.  If the process is Waiting it becomes runnable at
  /// the current virtual time; otherwise the wake is latched for its next
  /// suspend().  Safe to call multiple times (wakes collapse).  In a
  /// partitioned run this may only be called from the process's own
  /// partition (or from outside the run); remote partitions deliver wakes
  /// through Engine::schedule_on().
  void wake();

  /// Requests deterministic asynchronous termination: ProcessKilled unwinds
  /// the fiber at its next resume point instead of running user code.  A
  /// Waiting process is resumed (and unwinds) at the current virtual time; a
  /// Sleeping one unwinds when its sleep expires; a Created one never enters
  /// its body.  Used by the resiliency job layer to abort ranks stuck
  /// waiting on dead peers before relaunching from a checkpoint.  Same
  /// partition rules as wake(); no-op on a Finished process.
  void request_kill();

  /// Free-form "what am I blocked on" annotation shown by the deadlock
  /// report.  Blocking layers (e.g. MPI wait) set it before suspending and
  /// clear it on resume; it costs nothing unless a process actually blocks.
  void set_block_note(std::string note) { block_note_ = std::move(note); }
  const std::string& block_note() const { return block_note_; }

 private:
  friend class Engine;
  friend class Context;

  Process(Engine& engine, std::uint64_t id, std::uint32_t partition,
          std::string name, std::function<void(Context&)> body);

  void start_fiber();
  // Scheduler -> process fiber switch; returns when the process yields,
  // finishes, or throws (the exception is re-thrown on the engine side).
  void run_slice();
  // Process -> scheduler fiber switch (called from inside the fiber).
  void yield_to_engine();
  // Fiber entry point: runs the body, records the outcome, never returns.
  static void fiber_entry(void* self);

  Engine& engine_;
  std::uint64_t id_;
  std::uint32_t partition_;
  std::string name_;
  std::function<void(Context&)> body_;

  State state_ = State::Created;
  std::string block_note_;
  bool wake_pending_ = false;
  bool resume_scheduled_ = false;
  bool kill_requested_ = false;
  bool daemon_ = false;

  Fiber fiber_;
  std::exception_ptr error_;
};

/// The discrete-event engine.  Single-partition engines (the default) are
/// strictly single-threaded; partitioned engines run conservative parallel
/// windows across worker threads (see the file comment).
class Engine {
 public:
  /// Event keys reserve the top bits for the partition id; each partition
  /// can issue 2^40 (~10^12) events before overflow.
  static constexpr std::uint32_t kPartitionShift = 40;
  static constexpr std::uint64_t kSeqMask =
      (std::uint64_t{1} << kPartitionShift) - 1;
  static constexpr std::uint32_t kMaxPartitions = util::kMaxLanes;

  // Out of line: members reference the engine-internal ParallelState, which
  // is incomplete here (sim/parallel.hpp).
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// The current virtual time: the executing partition's clock from inside a
  /// run, the last committed time outside one.
  TimePoint now() const {
    const ExecTls& tls = t_exec_;
    return tls.engine == this ? tls.part->now : part0_.now;
  }

  /// Schedules `fn` to run at absolute time `t` (>= now) on the current
  /// partition (partition 0 when called from outside a run).  Any nullary
  /// callable works; captures up to 48 bytes are stored without allocating.
  void schedule_at(TimePoint t, EventFn fn);
  /// Schedules `fn` to run `d` from now.
  void schedule_in(Duration d, EventFn fn);

  /// Schedules `fn` at `t` on partition `p`.  From inside a partitioned run,
  /// a cross-partition target requires t >= the destination's current safe
  /// horizon — guaranteed by construction when the delay is at least the
  /// (src, dst) pair lookahead.
  void schedule_on(std::uint32_t p, TimePoint t, EventFn fn);

  /// Like schedule_at / schedule_on, but marks the event *replayable*: the
  /// caller asserts `fn` may be invoked more than once and that its side
  /// effects are confined to speculation-safe operations — scheduling more
  /// events, emitting trace records, and recording obs:: instruments.  Only
  /// replayable events are eligible for speculative window execution
  /// (set_speculation); everything else bounds the speculated tail.  Events
  /// that consume captured state (pooled messages), touch process state
  /// (wake/spawn/kill) or mutate shared fabric bookkeeping must NOT be
  /// marked replayable.  See docs/parallel_engine.md §Speculative windows.
  void schedule_replayable_at(TimePoint t, EventFn fn);
  void schedule_replayable_on(std::uint32_t p, TimePoint t, EventFn fn);

  /// Like schedule_on, but clamps `t` up to the destination's current safe
  /// horizon, so the call is always legal from any partition.  Use for
  /// bookkeeping that must reach another partition "as soon as safely
  /// possible" (the clamp is deterministic: horizons are a pure function of
  /// the simulation state, never of worker interleaving).
  void schedule_on_after(std::uint32_t p, TimePoint t, EventFn fn);

  /// Creates a process on partition 0 (or, from inside a process, on the
  /// calling partition); its body starts executing at the current time.  The
  /// returned reference stays valid for the lifetime of the engine.
  Process& spawn(std::string name, std::function<void(Context&)> body);

  /// Creates a process pinned to partition `p`.  From inside a partitioned
  /// run, only same-partition spawns are allowed.
  Process& spawn_on(std::uint32_t p, std::string name,
                    std::function<void(Context&)> body);

  /// Runs until the event queue is empty.  Throws SimError on deadlock
  /// (non-daemon processes still waiting with no pending events) and
  /// propagates the first exception escaping any process body.
  void run();

  /// Runs until `t` (events at exactly `t` included); returns true if events
  /// remain afterwards.  If the queue drains before `t`, performs the same
  /// deadlock detection as run() (throws SimError when non-daemon processes
  /// are stuck) but leaves daemons alive so the caller can keep scheduling.
  bool run_until(TimePoint t);

  // -- partitioning -----------------------------------------------------------

  /// Splits the simulation into `count` partitions (>= 1).  Must be called
  /// on an empty engine (no processes, no scheduled events).  With count 1
  /// (the default) the engine behaves exactly as the historical serial
  /// engine regardless of the worker setting.
  void set_partitions(std::uint32_t count);
  std::uint32_t partitions() const {
    return 1 + static_cast<std::uint32_t>(extra_.size());
  }

  /// Number of worker threads for partitioned runs (default 1: all
  /// partitions execute on the calling thread, same windowed schedule).
  /// Values above the partition count are clamped.  The produced simulation
  /// — traces, metrics, results — is identical for every worker count.
  void set_workers(std::uint32_t workers);
  std::uint32_t workers() const { return workers_; }

  /// The global conservative lookahead: the minimum virtual-time distance
  /// any cross-partition interaction travels.  Acts as the default for
  /// every (src, dst) pair not set explicitly below.  Some positive
  /// lookahead (global or per-pair) is required for every ordered pair
  /// before running a multi-partition engine; ignored otherwise.
  void set_lookahead(Duration lookahead);
  Duration lookahead() const { return lookahead_; }

  /// Per-pair lookahead: the minimum virtual latency of any channel from
  /// partition `src` into partition `dst` (use kUnconstrainedLookahead when
  /// the pair shares no channel).  Overrides the global default for that
  /// ordered pair.  net::install_pair_lookahead() derives the full matrix
  /// from the fabrics' route structure.
  void set_lookahead(std::uint32_t src, std::uint32_t dst, Duration lookahead);

  /// Effective lookahead for an ordered pair: the explicit pair entry if
  /// set, else the global default (Duration{0} when neither is configured).
  Duration lookahead(std::uint32_t src, std::uint32_t dst) const;

  // -- speculation ------------------------------------------------------------

  /// set_speculation(kAutoSpeculation): adapt the window depth K to the
  /// observed rollback rate (deterministically — the controller sees only
  /// virtual-time history, never wall clock).
  static constexpr int kAutoSpeculation = -1;

  /// Bounded-optimism speculative window execution (a bounded Time-Warp
  /// hybrid, docs/parallel_engine.md §Speculative windows).  With k > 0 each
  /// partition may run a tail of up to `k` *replayable* events past its
  /// conservative safe horizon per window; side effects are staged and the
  /// tail commits — or rolls back and re-executes — at the next plan step,
  /// so results stay bit-identical to conservative mode at every worker
  /// count.  k == 0 (the default) is exactly the PR 5/6 conservative engine;
  /// kAutoSpeculation enables the adaptive controller.  Serial
  /// (single-partition) runs ignore the setting entirely.
  void set_speculation(int k);
  int speculation() const { return speculation_; }

  /// True while the calling thread is executing a speculated tail.  Layers
  /// whose side effects cannot be rolled back (process wake/kill/spawn,
  /// fabric link booking) assert on this.
  bool speculating() const {
    const ExecTls& tls = t_exec_;
    return tls.engine == this && tls.part->speculating;
  }

  /// Enables wall-clock instruments (per-worker sim.barrier_wait_ns
  /// histograms).  Off by default because wall-clock values are not
  /// deterministic; purely virtual instruments (sim.windows,
  /// sim.solo_windows, sim.window_events) are always recorded.
  void set_wallclock_metrics(bool on) { wallclock_metrics_ = on; }
  bool wallclock_metrics() const { return wallclock_metrics_; }

  /// The partition whose events this thread is currently executing
  /// (0 outside a run).
  std::uint32_t current_partition() const {
    const ExecTls& tls = t_exec_;
    return tls.engine == this ? tls.part->id : 0;
  }

  std::size_t num_processes() const { return processes_.size(); }
  std::size_t events_executed() const;

  /// Sets the stack size for process fibers (rounded up to a page).  Must be
  /// called before the first spawn().  Default: 256 KiB, committed lazily.
  void set_fiber_stack_size(std::size_t bytes);
  std::size_t fiber_stack_size() const { return stack_pool_.stack_size(); }

  /// Attaches (or detaches, with nullptr) an execution tracer.  The engine
  /// does not own it; instrumented layers record spans when one is present.
  /// In partitioned runs the engine interposes per-partition buffers and
  /// commits records to this tracer in canonical order at window barriers.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const {
    const ExecTls& tls = t_exec_;
    return tls.engine == this ? tls.part->active_tracer : tracer_;
  }

  /// Attaches (or detaches, with nullptr) a metrics registry.  The engine
  /// does not own it.  Attach *before* constructing the instrumented layers:
  /// they register their handles at construction time and a layer built
  /// against a detached engine records nothing (same contract as Tracer).
  void set_metrics(obs::Registry* metrics);
  obs::Registry* metrics() const { return metrics_; }

 private:
  friend class Process;
  friend class Context;

  /// One partition: an independently sequenced event stream plus the
  /// scheduler-side fiber anchor for the thread executing it.  Partition 0
  /// doubles as the serial engine's state, so single-partition runs are
  /// bit-identical to the historical engine.
  struct Partition {
    std::uint32_t id = 0;
    EventQueue queue;
    TimePoint now{};
    std::uint64_t next_seq = 0;       // local; tagged with `id` into the key
    std::uint64_t next_local_pid = 0; // local process numbering
    std::size_t events_executed = 0;
    std::uint64_t cur_key = 0;        // key of the event being dispatched
    std::uint64_t trace_emit = 0;     // per-partition trace record counter
    TimePoint limit{};                // exclusive window end (parallel runs)
    bool speculating = false;         // executing a speculated tail right now
    Fiber sched_fiber;                // switch anchor while executing here
    Tracer* active_tracer = nullptr;  // buffer tracer during parallel runs
    std::exception_ptr error;         // first escaped exception this window

    std::uint64_t make_key() {
      DEEP_ASSERT(next_seq <= kSeqMask, "Engine: partition sequence overflow");
      return (static_cast<std::uint64_t>(id) << kPartitionShift) | next_seq++;
    }
  };

  /// Which (engine, partition) the calling thread is executing for.  Unset
  /// on threads outside a run and during serial runs — both resolve to
  /// partition 0 state without any synchronisation.
  struct ExecTls {
    Engine* engine = nullptr;
    Partition* part = nullptr;
  };
  static thread_local ExecTls t_exec_;

  /// RAII entry into a partition's execution context: publishes the TLS
  /// pointer and switches the metrics lane.
  struct ExecScope {
    ExecScope(Engine* engine, Partition* part)
        : saved_(t_exec_), lane_(part->id) {
      t_exec_ = ExecTls{engine, part};
    }
    ~ExecScope() { t_exec_ = saved_; }
    ExecScope(const ExecScope&) = delete;
    ExecScope& operator=(const ExecScope&) = delete;

   private:
    ExecTls saved_;
    util::LaneGuard lane_;
  };

  struct ParallelState;  // cross-partition rings, buffers, worker threads

  Partition& partition(std::uint32_t p) {
    DEEP_EXPECT(p < partitions(), "Engine: partition index out of range");
    return p == 0 ? part0_ : *extra_[p - 1];
  }
  Partition& cur_part() {
    const ExecTls& tls = t_exec_;
    return tls.engine == this ? *tls.part : part0_;
  }
  Fiber& cur_sched() { return cur_part().sched_fiber; }

  void dispatch_one(Partition& part);
  void schedule_local(Partition& part, TimePoint t, EventFn fn,
                      bool replayable);
  void schedule_remote(std::uint32_t p, TimePoint t, EventFn fn,
                       bool replayable);
  void schedule_resume(Process& p);
  void schedule_process(Partition& part, TimePoint t, EventKind kind,
                        Process& p);
  void check_deadlock_or_finish();
  void kill_all_unfinished();
  std::vector<Process*> processes_by_id() const;

  FiberStack acquire_stack();
  void release_stack(FiberStack stack);

  // Windowed parallel execution (sim/parallel.cpp).  Returns true if events
  // remain past `limit` (bounded mode only).
  bool run_windowed(TimePoint limit, bool bounded);
  void exec_partition_window(Partition& part);
  // Speculative tail of one window (sim/parallel.cpp): runs up to `k`
  // replayable events past part.limit, staging side effects for the next
  // plan step's validation.  `cap` bounds event times in bounded runs.
  void exec_speculative_tail(Partition& part, std::uint32_t k, TimePoint cap,
                             bool bounded);

  // Declared before part0_/extra_ so it is destroyed after them: finishing
  // fibers hand their stacks back to the pool during engine teardown.
  FiberStackPool stack_pool_;
  std::mutex stack_mu_;  // spawn/finish may race across partitions
  std::mutex spawn_mu_;  // guards processes_ growth during parallel runs
  Partition part0_;
  std::vector<std::unique_ptr<Partition>> extra_;
  std::unique_ptr<ParallelState> par_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::uint32_t workers_ = 1;
  int speculation_ = 0;  // 0 = conservative, > 0 = fixed K, kAutoSpeculation
  Duration lookahead_{};
  std::vector<std::int64_t> pair_la_;  // (src, dst) overrides, -1 = unset
  bool wallclock_metrics_ = false;
  bool running_ = false;
  bool parallel_run_ = false;  // inside run_windowed (any worker count)
  Tracer* tracer_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::Counter m_events_;          // sim.events
  obs::Counter m_fiber_switches_;  // sim.fiber_switches (process slices run)
  obs::Counter m_stale_resumes_;   // sim.stale_resumes (dropped stale events)
  obs::Counter m_windows_;         // sim.windows (parallel safe windows run)
  obs::Counter m_solo_windows_;    // sim.solo_windows (batched, no barrier)
  obs::Counter m_cross_events_;    // sim.cross_events (partition boundary)
  obs::Gauge m_queue_depth_;       // sim.queue_depth (every 64th dispatch)
  obs::Histogram m_window_events_; // sim.window_events (events per window)
  obs::Counter m_speculated_events_;  // sim.speculated_events (committed)
  obs::Counter m_spec_commits_;       // sim.commits (validated tails)
  obs::Counter m_rollbacks_;          // sim.rollbacks (discarded tails)
  obs::Counter m_rollback_events_;    // sim.rollback_events (re-executed)
  // Per-worker barrier wait (wall clock); only when set_wallclock_metrics.
  std::vector<obs::Histogram> m_barrier_wait_;
};

inline TimePoint Context::now() const { return engine_->now(); }

}  // namespace deep::sim

#pragma once
// Discrete-event simulation engine with cooperative actor processes.
//
// Model
// -----
// The engine owns a pooled event queue of (time, sequence, payload) events
// and a set of Processes.  Each Process runs user code on its own *fiber* —
// a stackful userspace context (ucontext) owned by the engine — and the
// scheduler switches into exactly one fiber at a time, so at any instant a
// single logical thread of execution is running.  Together with the
// sequence-number tie-break this makes every simulation fully deterministic.
// A fiber switch is a register swap (~100 ns), not a kernel round-trip, so
// simulations with tens of thousands of concurrent processes are practical;
// there are no OS threads involved at all.
//
// Fiber stacks default to 256 KiB (pages committed lazily) and are recycled
// through a free-list pool when processes finish; tune with
// Engine::set_fiber_stack_size() *before* the first spawn if process bodies
// need deeper stacks.
//
// The event queue is a 4-ary implicit heap of small (time, seq, slot)
// entries over a free-list slot pool (sim/event.hpp).  Callbacks are stored
// in a small-buffer-optimized EventFn (no heap allocation for captures up to
// 48 bytes), and process bookkeeping events — spawn slices, wake resumes,
// sleep expiries — carry just a tagged Process pointer.  Each such event is
// validated against the process's current state when dispatched, so an event
// that went stale (process killed, or already resumed through another path)
// is dropped instead of misfiring.
//
// Blocking primitives available to process code (via Context):
//   * delay(d)   — advance this process's local time by exactly d,
//   * suspend()  — park until some event calls Process::wake(),
//   * engine().schedule_in(...) — plain event callbacks (run on the engine).
//
// wake() on a running/sleeping process is remembered (binary semaphore), so
// the canonical wait loop `while (!pred()) ctx.suspend();` never loses a
// notification.  A wake delivered during delay() never shortens the sleep:
// it is latched and consumed by the next suspend().
//
// Teardown: the engine unwinds unfinished processes by throwing
// ProcessKilled through their fiber (run() does this for daemons once the
// queue drains; the destructor for everything else), so stack objects in
// process bodies are destroyed deterministically.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace deep::sim {

class Engine;
class Process;
class Tracer;

/// Handle passed to process bodies; the only way user code talks to the
/// engine from inside a process.
class Context {
 public:
  Context(Engine& engine, Process& process)
      : engine_(&engine), process_(&process) {}

  Engine& engine() const { return *engine_; }
  Process& process() const { return *process_; }

  TimePoint now() const;

  /// Advances this process's local time by exactly `d`.  Other events run in
  /// between; wake() calls received while sleeping are remembered.
  void delay(Duration d);

  /// Parks until Process::wake() is called (returns immediately if a wake is
  /// already pending).  Use in a predicate re-check loop.
  void suspend();

  /// Cooperative cancellation: true once the engine asked us to die.
  bool killed() const;

 private:
  Engine* engine_;
  Process* process_;
};

/// Thrown inside a process body when the engine tears it down; the process
/// trampoline catches it.  Do not catch it in user code.
struct ProcessKilled {};

/// A simulated sequential activity (an MPI rank, an OmpSs worker, a device
/// engine).  Created via Engine::spawn(); lifetime managed by the engine.
class Process {
 public:
  enum class State {
    Created,   // spawned, body not yet entered
    Runnable,  // has a resume event queued (or is currently running)
    Sleeping,  // inside delay()
    Waiting,   // inside suspend()
    Finished,  // body returned or threw
  };

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::Finished; }

  /// Marks this process as a daemon: the simulation is allowed to end while
  /// it is still waiting (it is then torn down gracefully).
  void set_daemon(bool daemon) { daemon_ = daemon; }
  bool daemon() const { return daemon_; }

  /// Delivers a wake-up.  If the process is Waiting it becomes runnable at
  /// the current virtual time; otherwise the wake is latched for its next
  /// suspend().  Safe to call multiple times (wakes collapse).
  void wake();

  /// Free-form "what am I blocked on" annotation shown by the deadlock
  /// report.  Blocking layers (e.g. MPI wait) set it before suspending and
  /// clear it on resume; it costs nothing unless a process actually blocks.
  void set_block_note(std::string note) { block_note_ = std::move(note); }
  const std::string& block_note() const { return block_note_; }

 private:
  friend class Engine;
  friend class Context;

  Process(Engine& engine, std::uint64_t id, std::string name,
          std::function<void(Context&)> body);

  void start_fiber();
  // Scheduler -> process fiber switch; returns when the process yields,
  // finishes, or throws (the exception is re-thrown on the engine side).
  void run_slice();
  // Process -> scheduler fiber switch (called from inside the fiber).
  void yield_to_engine();
  // Fiber entry point: runs the body, records the outcome, never returns.
  static void fiber_entry(void* self);

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  std::function<void(Context&)> body_;

  State state_ = State::Created;
  std::string block_note_;
  bool wake_pending_ = false;
  bool resume_scheduled_ = false;
  bool kill_requested_ = false;
  bool daemon_ = false;

  Fiber fiber_;
  std::exception_ptr error_;
};

/// The discrete-event engine.  Not thread-safe by design: all interaction
/// happens from the engine or from the single running process fiber.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now).  Any nullary
  /// callable works; captures up to 48 bytes are stored without allocating.
  void schedule_at(TimePoint t, EventFn fn);
  /// Schedules `fn` to run `d` from now.
  void schedule_in(Duration d, EventFn fn);

  /// Creates a process; its body starts executing at the current time (or at
  /// simulation start).  The returned reference stays valid for the lifetime
  /// of the engine.
  Process& spawn(std::string name, std::function<void(Context&)> body);

  /// Runs until the event queue is empty.  Throws SimError on deadlock
  /// (non-daemon processes still waiting with no pending events) and
  /// propagates the first exception escaping any process body.
  void run();

  /// Runs until `t` (events at exactly `t` included); returns true if events
  /// remain afterwards.  If the queue drains before `t`, performs the same
  /// deadlock detection as run() (throws SimError when non-daemon processes
  /// are stuck) but leaves daemons alive so the caller can keep scheduling.
  bool run_until(TimePoint t);

  std::size_t num_processes() const { return processes_.size(); }
  std::size_t events_executed() const { return events_executed_; }

  /// Sets the stack size for process fibers (rounded up to a page).  Must be
  /// called before the first spawn().  Default: 256 KiB, committed lazily.
  void set_fiber_stack_size(std::size_t bytes);
  std::size_t fiber_stack_size() const { return stack_pool_.stack_size(); }

  /// Attaches (or detaches, with nullptr) an execution tracer.  The engine
  /// does not own it; instrumented layers record spans when one is present.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Attaches (or detaches, with nullptr) a metrics registry.  The engine
  /// does not own it.  Attach *before* constructing the instrumented layers:
  /// they register their handles at construction time and a layer built
  /// against a detached engine records nothing (same contract as Tracer).
  void set_metrics(obs::Registry* metrics);
  obs::Registry* metrics() const { return metrics_; }

 private:
  friend class Process;
  friend class Context;

  void dispatch_one();
  void schedule_resume(Process& p);
  void schedule_process(TimePoint t, EventKind kind, Process& p);
  void check_deadlock_or_finish();
  void kill_all_unfinished();

  // Declared before processes_ so it is destroyed after them: finishing
  // fibers hand their stacks back to the pool during engine teardown.
  FiberStackPool stack_pool_;
  Fiber sched_fiber_;
  EventQueue queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_proc_id_ = 0;
  std::size_t events_executed_ = 0;
  bool running_ = false;
  Tracer* tracer_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::Counter m_events_;          // sim.events
  obs::Counter m_fiber_switches_;  // sim.fiber_switches (process slices run)
  obs::Counter m_stale_resumes_;   // sim.stale_resumes (dropped stale events)
  obs::Gauge m_queue_depth_;       // sim.queue_depth (every 64th dispatch)
};

inline TimePoint Context::now() const { return engine_->now(); }

}  // namespace deep::sim

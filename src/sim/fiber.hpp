#pragma once
// Stackful fibers for the simulation engine.
//
// A Fiber is a suspended flow of control with its own stack, switched to and
// from with a plain userspace register swap (POSIX ucontext).  The engine
// uses one fiber per simulated Process plus one implicit fiber for the
// scheduler itself; a switch costs a few hundred nanoseconds instead of the
// two kernel context switches of the previous thread/condvar hand-shake.
//
// Stacks are owned by a FiberStackPool: mmap'd blocks with a PROT_NONE guard
// page at the low end, recycled on a free list when a fiber terminates so
// spawn-heavy simulations (10k+ processes) do not churn the allocator.
//
// AddressSanitizer support: every switch is annotated with
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber so ASan
// tracks the active stack; recycled stacks are unpoisoned before reuse.
// Build with -fsanitize=address (e.g. the `asan` CMake preset) to use it.

#include <csetjmp>
#include <cstddef>
#include <cstdint>
#include <ucontext.h>

#include <vector>

namespace deep::sim {

#if defined(__SANITIZE_ADDRESS__)
#define DEEPSIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DEEPSIM_ASAN_FIBERS 1
#endif
#endif

/// A stack block handed out by FiberStackPool.  `base` is the lowest usable
/// address (just above the guard page); the stack grows down from
/// `base + size`.
struct FiberStack {
  void* base = nullptr;
  std::size_t size = 0;

  explicit operator bool() const { return base != nullptr; }
};

/// Allocates and recycles fiber stacks of one fixed size.  Not thread-safe
/// (the engine is single-threaded by design).
class FiberStackPool {
 public:
  /// Default stack size for process fibers.  Pages are committed lazily, so
  /// this costs virtual address space only until a fiber actually recurses.
  static constexpr std::size_t kDefaultStackSize = 256 * 1024;

  explicit FiberStackPool(std::size_t stack_size = kDefaultStackSize);
  ~FiberStackPool();
  FiberStackPool(const FiberStackPool&) = delete;
  FiberStackPool& operator=(const FiberStackPool&) = delete;

  /// Changes the stack size for subsequently acquired stacks.  Must be called
  /// before the first acquire() (enforced by the caller: the engine rejects
  /// set_fiber_stack_size() after the first spawn).
  void set_stack_size(std::size_t bytes);
  std::size_t stack_size() const { return stack_size_; }

  /// Pops a recycled stack or maps a fresh one (guard page included).
  FiberStack acquire();
  /// Returns a stack to the free list for reuse by a future fiber.
  void release(FiberStack stack);

  std::size_t total_allocated() const { return total_allocated_; }

 private:
  std::size_t stack_size_;
  std::vector<FiberStack> free_;
  std::size_t total_allocated_ = 0;
};

/// One suspended (or running) flow of control.  A default-constructed Fiber
/// represents the caller's own context ("the scheduler") and becomes valid
/// the first time another fiber switches back to it; a Fiber created with
/// create() runs `entry(arg)` on its own stack on first switch-in.
class Fiber {
 public:
  using Entry = void (*)(void* arg);

  Fiber() = default;
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Prepares this fiber to run `entry(arg)` on `stack`.  The fiber does not
  /// start until someone switches to it.  `entry` must never return: it must
  /// end with a terminating switch (switch_to with `terminating = true`).
  void create(FiberStack stack, Entry entry, void* arg);

  bool created() const { return stack_.base != nullptr; }

  /// Detaches the stack (after the fiber has terminated) so the caller can
  /// recycle it through the pool.
  FiberStack take_stack();

  /// Switches execution from `from` (the currently running fiber) to `to`.
  /// Returns when someone switches back to `from`.  With `terminating` set,
  /// `from` never resumes: its stack may be recycled by the target and, under
  /// ASan, its fake stack is released.
  static void switch_to(Fiber& from, Fiber& to, bool terminating = false);

 private:
  // Hybrid switching (the QEMU coroutine technique): ucontext only builds
  // the initial stack frame; the first switch-in runs through swapcontext
  // (one sigprocmask syscall, once per fiber), after which every suspend and
  // resume is a pure userspace sigsetjmp/siglongjmp with no mask save.
  ucontext_t ctx_{};
  sigjmp_buf jmp_{};
  // A default-constructed Fiber is the caller's own live context: it is
  // resumed through the sigsetjmp it takes when switching away, never
  // through swapcontext.  create() resets this so the first switch-in runs
  // the ucontext entry path.
  bool entered_ = true;
  FiberStack stack_{};  // empty for the scheduler's own context
#if DEEPSIM_ASAN_FIBERS
  friend struct FiberAsan;
  void* fake_stack_ = nullptr;
  // Stack bounds as reported to ASan; for the scheduler fiber these are
  // learned from __sanitizer_finish_switch_fiber on the first switch away.
  const void* asan_stack_bottom_ = nullptr;
  std::size_t asan_stack_size_ = 0;
#endif
};

}  // namespace deep::sim

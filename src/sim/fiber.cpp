#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>

#include "util/error.hpp"

#if DEEPSIM_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace deep::sim {

namespace {

std::size_t page_size() {
  static const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t round_up_to_page(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

#if DEEPSIM_ASAN_FIBERS
// The fiber being suspended by the in-flight switch; the entry trampoline
// uses it to report the scheduler's stack bounds back to that fiber.
thread_local Fiber* t_switch_source = nullptr;
#endif

}  // namespace

#if DEEPSIM_ASAN_FIBERS
struct FiberAsan {
  static void start_switch(Fiber& from, Fiber& to, bool terminating) {
    t_switch_source = &from;
    __sanitizer_start_switch_fiber(terminating ? nullptr : &from.fake_stack_,
                                   to.asan_stack_bottom_, to.asan_stack_size_);
  }
  static void finish_switch(Fiber& resumed) {
    __sanitizer_finish_switch_fiber(resumed.fake_stack_, nullptr, nullptr);
  }
  static void finish_first_entry() {
    // First time on this fiber's stack: tell ASan the switch completed and
    // learn the bounds of the stack we came from (the scheduler's, which has
    // no other way to discover them).
    Fiber* source = t_switch_source;
    __sanitizer_finish_switch_fiber(nullptr, &source->asan_stack_bottom_,
                                    &source->asan_stack_size_);
  }
  static void on_create(Fiber& f) {
    f.asan_stack_bottom_ = f.stack_.base;
    f.asan_stack_size_ = f.stack_.size;
  }
};
#endif

// ---------------------------------------------------------------------------
// FiberStackPool
// ---------------------------------------------------------------------------

FiberStackPool::FiberStackPool(std::size_t stack_size)
    : stack_size_(round_up_to_page(stack_size)) {}

FiberStackPool::~FiberStackPool() {
  const std::size_t page = page_size();
  for (FiberStack& s : free_) {
    // The guard page sits below the usable range; unmap the whole block.
    ::munmap(static_cast<char*>(s.base) - page, s.size + page);
  }
}

void FiberStackPool::set_stack_size(std::size_t bytes) {
  DEEP_EXPECT(bytes >= 4 * 1024, "fiber stack size too small (< 4 KiB)");
  stack_size_ = round_up_to_page(bytes);
}

FiberStack FiberStackPool::acquire() {
  if (!free_.empty()) {
    FiberStack s = free_.back();
    free_.pop_back();
#if DEEPSIM_ASAN_FIBERS
    // Stale redzones from the previous occupant would trip false positives.
    __asan_unpoison_memory_region(s.base, s.size);
#endif
    return s;
  }
  const std::size_t page = page_size();
  void* mem = ::mmap(nullptr, stack_size_ + page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED)
    throw util::SimError("FiberStackPool: mmap failed (out of address space?)");
  // Guard page at the low end: stack overflow faults instead of corrupting
  // a neighbouring fiber's stack.
  ::mprotect(mem, page, PROT_NONE);
  ++total_allocated_;
  return FiberStack{static_cast<char*>(mem) + page, stack_size_};
}

void FiberStackPool::release(FiberStack stack) { free_.push_back(stack); }

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

namespace {

// makecontext passes only `int` arguments; split the 64-bit entry and arg
// pointers into halves and reassemble them here.
void fiber_trampoline(unsigned entry_hi, unsigned entry_lo, unsigned arg_hi,
                      unsigned arg_lo) {
#if DEEPSIM_ASAN_FIBERS
  FiberAsan::finish_first_entry();
#endif
  auto entry = reinterpret_cast<Fiber::Entry>(
      (static_cast<std::uintptr_t>(entry_hi) << 32) |
      static_cast<std::uintptr_t>(entry_lo));
  void* arg = reinterpret_cast<void*>(
      (static_cast<std::uintptr_t>(arg_hi) << 32) |
      static_cast<std::uintptr_t>(arg_lo));
  entry(arg);
  // `entry` must end with a terminating switch and never return.
  std::abort();
}

}  // namespace

void Fiber::create(FiberStack stack, Entry entry, void* arg) {
  DEEP_ASSERT(stack.base != nullptr, "Fiber::create: null stack");
  stack_ = stack;
  entered_ = false;
  ::getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack.base;
  ctx_.uc_stack.ss_size = stack.size;
  ctx_.uc_link = nullptr;
  const auto ep = reinterpret_cast<std::uintptr_t>(entry);
  const auto ap = reinterpret_cast<std::uintptr_t>(arg);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wcast-function-type"
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&fiber_trampoline), 4,
                static_cast<unsigned>(ep >> 32), static_cast<unsigned>(ep),
                static_cast<unsigned>(ap >> 32), static_cast<unsigned>(ap));
#pragma GCC diagnostic pop
#if DEEPSIM_ASAN_FIBERS
  FiberAsan::on_create(*this);
#endif
}

FiberStack Fiber::take_stack() {
  FiberStack s = stack_;
  stack_ = FiberStack{};
  return s;
}

void Fiber::switch_to(Fiber& from, Fiber& to, [[maybe_unused]] bool terminating) {
#if DEEPSIM_ASAN_FIBERS
  FiberAsan::start_switch(from, to, terminating);
#endif
  if (sigsetjmp(from.jmp_, 0) == 0) {
    if (to.entered_) {
      siglongjmp(to.jmp_, 1);
    } else {
      // First activation: swapcontext gets us onto the new stack (the only
      // sigprocmask syscall this fiber ever costs).  The fiber resumes
      // `from` via siglongjmp to the sigsetjmp above, never through
      // `scratch`, so control cannot fall out of the swapcontext call.
      to.entered_ = true;
      ucontext_t scratch;
      ::swapcontext(&scratch, &to.ctx_);
      std::abort();
    }
  }
#if DEEPSIM_ASAN_FIBERS
  // Runs when someone eventually switches back to `from`.
  FiberAsan::finish_switch(from);
#endif
}

}  // namespace deep::sim

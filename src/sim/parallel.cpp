// Conservative parallel (windowed) execution for sim::Engine.
//
// Protocol per window, driven by the main thread with W-1 helper threads:
//
//   plan    (main only)  drain cross-partition rings into destination
//                        queues in canonical (src, dst) order, then derive
//                        a per-partition safe horizon from the per-pair
//                        lookahead matrix (min-plus fixed point, below)
//   barrier
//   execute (all)        each worker runs its partitions' events with
//                        t < partition.limit; partition p is executed by
//                        worker p % W
//   barrier
//   commit  (main only)  merge buffered trace records in (time, key, emit)
//                        order, sample commit-point gauges
//
// Horizon computation.  Let next(p) be partition p's earliest queued event
// and la(s, d) the (s, d) pair lookahead (the minimum virtual latency of
// any channel from s into d; INT64_MAX when they share none).  The earliest
// time partition p could possibly execute *any* event — queued now or
// received later through any chain of peers — is the least fixed point of
//
//   LB(p) = min( next(p),  min over s != p of LB(s) + la(s, p) )
//
// solved exactly by a Dijkstra-style relaxation (all la > 0, so finalising
// the global minimum first is sound).  Partition p may then safely execute
// everything strictly below
//
//   limit(p) = min over s != p of ( LB(s) + la(s, p) )
//
// because any event a peer could still send into p arrives at or beyond
// that bound.  The naive per-pair window `peer_next + la(peer, self)`
// without the fixed point is transitively unsound (a two-hop chain
// s -> m -> p can beat it); the LB relaxation is what makes per-pair
// windows safe.  Progress is guaranteed: the partition holding the global
// minimum event time always has limit > its next event.  With a uniform
// lookahead this degenerates to (at least) the historical global window
// [T, T + la).
//
// Window batching.  When only one partition has executable work below its
// horizon, the main thread runs it inline without releasing the barrier —
// the workers stay parked — which amortises barrier cost across the long
// single-partition stretches that per-pair horizons create.  The batching
// decision is a pure function of queue state, so it cannot depend on the
// worker count.  (A fiber may therefore run on the main thread in one
// window and on its pinned worker in the next; fibers carry no thread
// affinity, the same property the teardown path has always relied on.)
//
// Every side effect that could depend on thread interleaving is confined to
// a partition (queues, fibers, metric lanes, trace buffers) or serialised at
// the barriers (ring drain, trace merge), which is what makes the result
// bit-identical for every worker count.  See docs/parallel_engine.md.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>
#include <tuple>

#include "sim/parallel.hpp"

namespace deep::sim {

void Engine::exec_partition_window(Partition& part) {
  ExecScope scope(this, &part);
  try {
    while (!part.queue.empty() && part.queue.next_time() < part.limit)
      dispatch_one(part);
  } catch (...) {
    // Deterministically propagated by the main thread after the barrier
    // (lowest partition id wins); the partition's remaining events stay
    // queued, exactly like a serial run stopping at a throwing event.
    part.error = std::current_exception();
  }
}

bool Engine::run_windowed(TimePoint limit, bool bounded) {
  const std::uint32_t P = partitions();
  if (!par_) par_ = std::make_unique<ParallelState>(*this);
  if (metrics_) metrics_->ensure_lanes(P);
  const std::uint32_t W = std::min(workers_, P);

  // Resolve the effective pair lookahead matrix once per run: explicit pair
  // entries win, the global lookahead fills the rest, and every ordered
  // pair must end up positive (kUnconstrainedLookahead for pairs that share
  // no channel).
  auto& la = par_->eff_la;
  la.assign(static_cast<std::size_t>(P) * P, INT64_MAX);
  for (std::uint32_t s = 0; s < P; ++s) {
    for (std::uint32_t d = 0; d < P; ++d) {
      if (s == d) continue;
      const std::int64_t v = lookahead(s, d).ps;
      DEEP_EXPECT(v > 0,
                  "Engine: multi-partition runs require set_lookahead(> 0) — "
                  "the minimum cross-partition link latency, global or "
                  "per-pair");
      la[static_cast<std::size_t>(s) * P + d] = v;
    }
  }

  // Wall-clock barrier instruments are opt-in: their values depend on the
  // host, so they would break deterministic metric snapshots if always on.
  const bool time_barriers = wallclock_metrics_ && metrics_ != nullptr;
  if (time_barriers && m_barrier_wait_.size() < W) {
    m_barrier_wait_.clear();
    for (std::uint32_t w = 0; w < W; ++w)
      m_barrier_wait_.push_back(
          metrics_->histogram("sim.barrier_wait_ns.w" + std::to_string(w)));
  }

  for (std::uint32_t p = 0; p < P; ++p)
    partition(p).active_tracer = tracer_ ? &par_->tracers[p] : nullptr;
  parallel_run_ = true;

  std::barrier<> sync(static_cast<std::ptrdiff_t>(W));
  std::atomic<bool> stop{false};

  auto barrier_wait = [&](std::uint32_t w) {
    if (!time_barriers) {
      sync.arrive_and_wait();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    sync.arrive_and_wait();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    // Each worker records on its own lane; merged by the registry on read.
    util::LaneGuard lane(w);
    m_barrier_wait_[w].record(ns);
  };

  auto worker_loop = [&](std::uint32_t w) {
    for (;;) {
      barrier_wait(w);  // window published (or stop)
      if (stop.load(std::memory_order_acquire)) return;
      for (std::uint32_t p = w; p < P; p += W)
        exec_partition_window(partition(p));
      barrier_wait(w);  // window complete
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(W > 0 ? W - 1 : 0);
  for (std::uint32_t w = 1; w < W; ++w) threads.emplace_back(worker_loop, w);

  auto sat_add = [](std::int64_t a, std::int64_t b) {
    return a > INT64_MAX - b ? INT64_MAX : a + b;
  };

  // Merges the given partitions' buffered trace records into the user's
  // tracer in (t, key, emit) order — unique per record, so the trace file
  // is identical for every worker count.
  auto commit_traces = [&](std::uint32_t first, std::uint32_t last) {
    if (!tracer_) return;
    auto& scratch = par_->merge_scratch;
    scratch.clear();
    for (std::uint32_t p = first; p < last; ++p) {
      auto& recs = par_->tracers[p].records();
      scratch.insert(scratch.end(), std::make_move_iterator(recs.begin()),
                     std::make_move_iterator(recs.end()));
      recs.clear();
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const ParallelState::BufferTracer::Rec& a,
                 const ParallelState::BufferTracer::Rec& b) {
                return std::tie(a.t_ps, a.key, a.emit) <
                       std::tie(b.t_ps, b.key, b.emit);
              });
    for (const auto& rec : scratch) {
      if (rec.is_span)
        tracer_->span(rec.track, rec.name, rec.begin, rec.end, rec.category);
      else
        tracer_->instant(rec.track, rec.name, rec.begin, rec.category);
    }
    scratch.clear();
  };

  auto sample_queue_depth = [&] {
    std::size_t queued = 0;
    for (std::uint32_t p = 0; p < P; ++p) queued += partition(p).queue.size();
    m_queue_depth_.set(static_cast<std::int64_t>(queued));
  };

  auto& next = par_->plan_next;
  auto& lb = par_->plan_lb;
  auto& done = par_->plan_done;

  bool events_remain = false;
  std::exception_ptr proc_error;
  std::exception_ptr fatal;
  bool stopped = false;
  try {
    for (;;) {
      // ---- plan: main thread only, workers parked at the barrier ----
      // Drain the rings in canonical (dst, src) order and re-key into the
      // destination's sequence stream: the keys — and therefore the
      // committed order among simultaneous events — cannot depend on how
      // worker execution interleaved during the window.
      std::int64_t crossed = 0;
      for (std::uint32_t dst = 0; dst < P; ++dst) {
        Partition& d = partition(dst);
        for (std::uint32_t src = 0; src < P; ++src) {
          if (src == dst) continue;
          par_->ring(src, dst).drain([&](ParallelState::CrossEvent&& ev) {
            DEEP_ASSERT(ev.t >= d.now,
                        "parallel engine: cross-partition event in the past");
            d.queue.push(ev.t, d.make_key(), EventKind::Callback, nullptr,
                         std::move(ev.fn));
            ++crossed;
          });
        }
      }
      if (crossed != 0) m_cross_events_.add(crossed);

      // First escaped process exception wins, by partition id — a
      // deterministic choice because window contents are deterministic.
      for (std::uint32_t p = 0; p < P; ++p) {
        Partition& part = partition(p);
        if (part.error && !proc_error) proc_error = part.error;
        part.error = nullptr;
      }

      next.assign(P, INT64_MAX);
      std::int64_t t_min = INT64_MAX;
      for (std::uint32_t p = 0; p < P; ++p) {
        Partition& part = partition(p);
        if (part.queue.empty()) continue;
        next[p] = part.queue.next_time().ps;
        t_min = std::min(t_min, next[p]);
      }
      bool have_window = t_min != INT64_MAX && !proc_error;
      if (have_window && bounded && t_min > limit.ps) {
        have_window = false;
        events_remain = true;
      }
      if (!have_window) {
        stop.store(true, std::memory_order_release);
        sync.arrive_and_wait();
        stopped = true;
        break;
      }

      // Min-plus fixed point for the per-partition emission lower bounds,
      // then the safe horizons (see the file comment for the argument).
      lb = next;
      done.assign(P, 0);
      for (std::uint32_t round = 0; round < P; ++round) {
        std::uint32_t u = P;
        std::int64_t best = INT64_MAX;
        for (std::uint32_t p = 0; p < P; ++p)
          if (!done[p] && lb[p] < best) {
            best = lb[p];
            u = p;
          }
        if (u == P) break;  // the rest are unreachable
        done[u] = 1;
        const std::int64_t* row = &la[static_cast<std::size_t>(u) * P];
        for (std::uint32_t q = 0; q < P; ++q) {
          if (done[q] || row[q] == INT64_MAX) continue;
          lb[q] = std::min(lb[q], sat_add(best, row[q]));
        }
      }

      std::uint32_t active = 0;
      std::uint32_t solo = 0;
      for (std::uint32_t p = 0; p < P; ++p) {
        std::int64_t lim = INT64_MAX;
        for (std::uint32_t s = 0; s < P; ++s) {
          const std::int64_t l = la[static_cast<std::size_t>(s) * P + p];
          if (s == p || l == INT64_MAX || lb[s] == INT64_MAX) continue;
          lim = std::min(lim, sat_add(lb[s], l));
        }
        // Bounded runs additionally include events at exactly `limit`
        // (hence the +1 ps exclusive cap).
        if (bounded && lim > limit.ps) lim = sat_add(limit.ps, 1);
        partition(p).limit = TimePoint{lim};
        if (next[p] < lim) {
          ++active;
          solo = p;
        }
      }
      DEEP_ASSERT(active > 0, "parallel engine: no executable partition");
      m_windows_.add(1);
      const std::size_t before = events_executed();

      if (active == 1) {
        // ---- batched window: a single runnable partition; execute it on
        // the main thread with the workers still parked, skipping both
        // barriers.  Pure function of queue state => worker-independent.
        m_solo_windows_.add(1);
        exec_partition_window(partition(solo));
        m_window_events_.record(
            static_cast<std::int64_t>(events_executed() - before));
        commit_traces(solo, solo + 1);
        sample_queue_depth();
        continue;
      }

      // ---- execute: all workers, partitions pinned p -> worker p % W ----
      barrier_wait(0);
      for (std::uint32_t p = 0; p < P; p += W)
        exec_partition_window(partition(p));
      barrier_wait(0);

      // ---- commit: main thread only ----
      m_window_events_.record(
          static_cast<std::int64_t>(events_executed() - before));
      commit_traces(0, P);
      // Commit-point queue-depth sample (the serial engine decimates by
      // event count instead; both are deterministic).
      sample_queue_depth();
    }
  } catch (...) {
    fatal = std::current_exception();
    if (!stopped) {
      // Workers are parked at the top-of-window barrier; release them into
      // the stop path so join() below cannot deadlock.
      stop.store(true, std::memory_order_release);
      sync.arrive_and_wait();
      stopped = true;
    }
  }
  for (auto& thread : threads) thread.join();

  parallel_run_ = false;
  for (std::uint32_t p = 0; p < P; ++p) partition(p).active_tracer = nullptr;

  if (fatal) std::rethrow_exception(fatal);
  if (proc_error) std::rethrow_exception(proc_error);

  // Align every partition clock to the committed end of the run so post-run
  // now() and scheduling read one consistent time.
  TimePoint final_now = bounded ? limit : TimePoint{};
  for (std::uint32_t p = 0; p < P; ++p)
    if (partition(p).now > final_now) final_now = partition(p).now;
  for (std::uint32_t p = 0; p < P; ++p) {
    Partition& part = partition(p);
    if (part.now < final_now) part.now = final_now;
  }
  return events_remain;
}

}  // namespace deep::sim

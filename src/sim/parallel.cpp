// Conservative parallel (windowed) execution for sim::Engine.
//
// Protocol per window, driven by the main thread with W-1 helper threads:
//
//   plan    (main only)  drain cross-partition rings into destination
//                        queues in canonical (src, dst) order, then derive
//                        a per-partition safe horizon from the per-pair
//                        lookahead matrix (min-plus fixed point, below)
//   barrier
//   execute (all)        each worker runs its partitions' events with
//                        t < partition.limit; partition p is executed by
//                        worker p % W
//   barrier
//   commit  (main only)  merge buffered trace records in (time, key, emit)
//                        order, sample commit-point gauges
//
// Horizon computation.  Let next(p) be partition p's earliest queued event
// and la(s, d) the (s, d) pair lookahead (the minimum virtual latency of
// any channel from s into d; INT64_MAX when they share none).  The earliest
// time partition p could possibly execute *any* event — queued now or
// received later through any chain of peers — is the least fixed point of
//
//   LB(p) = min( next(p),  min over s != p of LB(s) + la(s, p) )
//
// solved exactly by a Dijkstra-style relaxation (all la > 0, so finalising
// the global minimum first is sound).  Partition p may then safely execute
// everything strictly below
//
//   limit(p) = min over s != p of ( LB(s) + la(s, p) )
//
// because any event a peer could still send into p arrives at or beyond
// that bound.  The naive per-pair window `peer_next + la(peer, self)`
// without the fixed point is transitively unsound (a two-hop chain
// s -> m -> p can beat it); the LB relaxation is what makes per-pair
// windows safe.  Progress is guaranteed: the partition holding the global
// minimum event time always has limit > its next event.  With a uniform
// lookahead this degenerates to (at least) the historical global window
// [T, T + la).
//
// Window batching.  When only one partition has executable work below its
// horizon, the main thread runs it inline without releasing the barrier —
// the workers stay parked — which amortises barrier cost across the long
// single-partition stretches that per-pair horizons create.  The batching
// decision is a pure function of queue state, so it cannot depend on the
// worker count.  (A fiber may therefore run on the main thread in one
// window and on its pinned worker in the next; fibers carry no thread
// affinity, the same property the teardown path has always relied on.)
//
// Every side effect that could depend on thread interleaving is confined to
// a partition (queues, fibers, metric lanes, trace buffers) or serialised at
// the barriers (ring drain, trace merge), which is what makes the result
// bit-identical for every worker count.  See docs/parallel_engine.md.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <iterator>
#include <thread>
#include <tuple>

#include "sim/parallel.hpp"

namespace deep::sim {

void Engine::exec_partition_window(Partition& part) {
  ExecScope scope(this, &part);
  try {
    while (!part.queue.empty() && part.queue.next_time() < part.limit)
      dispatch_one(part);
  } catch (...) {
    // Deterministically propagated by the main thread after the barrier
    // (lowest partition id wins); the partition's remaining events stay
    // queued, exactly like a serial run stopping at a throwing event.
    part.error = std::current_exception();
  }
}

// Speculative tail of one window (docs/parallel_engine.md §Speculative
// windows): runs up to `k` *replayable* events past part.limit.  Everything
// the tail does stays partition-confined or is staged: local pushes are
// recorded (so rollback can remove them), cross-partition sends are withheld
// in spec.staged instead of entering the rings, trace records land in the
// partition's buffer past a truncation mark, and instrument updates append
// to the lane's undo journal.  The main thread validates the tail at the
// next plan step, while every executor is parked.
void Engine::exec_speculative_tail(Partition& part, std::uint32_t k,
                                   TimePoint cap, bool bounded) {
  ParallelState::SpecState& spec = par_->spec[part.id];
  DEEP_ASSERT(!spec.pending, "speculative tail: previous tail not validated");
  if (part.error) return;
  if (part.queue.empty() || !part.queue.next_replayable()) return;
  if (bounded && part.queue.next_time() > cap) return;
  ExecScope scope(this, &part);
  // Snapshot the committed frontier; rollback restores it exactly.  With
  // next_seq restored, re-execution assigns the very same keys to the very
  // same events, which is what keeps results independent of whether an
  // event committed speculatively or conservatively.
  spec.now = part.now;
  spec.next_seq = part.next_seq;
  spec.events_executed = part.events_executed;
  spec.cur_key = part.cur_key;
  spec.trace_emit = part.trace_emit;
  spec.trace_mark = par_->tracers[part.id].records().size();
  spec.failed = false;
  part.speculating = true;
  if (metrics_) metrics_->spec_begin(part.id);
  while (spec.tail.size() < k && !part.queue.empty() &&
         part.queue.next_replayable() &&
         (!bounded || part.queue.next_time() <= cap)) {
    spec.tail.push_back(part.queue.pop());
    EventQueue::Dispatched& ev = spec.tail.back();
    part.now = ev.t;
    part.cur_key = ev.key;
    ++part.events_executed;
    m_events_.add(1);
    spec.last_t = ev.t.ps;
    try {
      ev.fn();  // invoke() leaves the callable intact for replay
    } catch (...) {
      // The same event throws again on conservative re-execution, which is
      // where the error must surface: force a rollback and let the horizon
      // reach this event the slow way.
      spec.failed = true;
      break;
    }
  }
  part.speculating = false;
  spec.pending = !spec.tail.empty();
  if (metrics_) {
    if (spec.pending)
      // Keep the journal for a possible rollback but stop capturing: adds
      // that land on this lane before validation (the main thread's
      // commit-step counters) belong to committed history.
      metrics_->spec_hold(part.id);
    else
      metrics_->spec_commit(part.id);
  }
}

bool Engine::run_windowed(TimePoint limit, bool bounded) {
  const std::uint32_t P = partitions();
  if (!par_) par_ = std::make_unique<ParallelState>(*this);
  if (metrics_) metrics_->ensure_lanes(P);
  const std::uint32_t W = std::min(workers_, P);

  // Resolve the effective pair lookahead matrix once per run: explicit pair
  // entries win, the global lookahead fills the rest, and every ordered
  // pair must end up positive (kUnconstrainedLookahead for pairs that share
  // no channel).
  auto& la = par_->eff_la;
  la.assign(static_cast<std::size_t>(P) * P, INT64_MAX);
  for (std::uint32_t s = 0; s < P; ++s) {
    for (std::uint32_t d = 0; d < P; ++d) {
      if (s == d) continue;
      const std::int64_t v = lookahead(s, d).ps;
      DEEP_EXPECT(v > 0,
                  "Engine: multi-partition runs require set_lookahead(> 0) — "
                  "the minimum cross-partition link latency, global or "
                  "per-pair");
      la[static_cast<std::size_t>(s) * P + d] = v;
    }
  }

  // Wall-clock barrier instruments are opt-in: their values depend on the
  // host, so they would break deterministic metric snapshots if always on.
  const bool time_barriers = wallclock_metrics_ && metrics_ != nullptr;
  if (time_barriers && m_barrier_wait_.size() < W) {
    m_barrier_wait_.clear();
    for (std::uint32_t w = 0; w < W; ++w)
      m_barrier_wait_.push_back(
          metrics_->histogram("sim.barrier_wait_ns.w" + std::to_string(w)));
  }

  for (std::uint32_t p = 0; p < P; ++p)
    partition(p).active_tracer = tracer_ ? &par_->tracers[p] : nullptr;
  parallel_run_ = true;

  std::barrier<> sync(static_cast<std::ptrdiff_t>(W));
  std::atomic<bool> stop{false};

  auto barrier_wait = [&](std::uint32_t w) {
    if (!time_barriers) {
      sync.arrive_and_wait();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    sync.arrive_and_wait();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    // Each worker records on its own lane; merged by the registry on read.
    util::LaneGuard lane(w);
    m_barrier_wait_[w].record(ns);
  };

  // Speculation setup.  spec_k is written only during the plan step (all
  // executors parked at the barrier) and read during execution, so it needs
  // no synchronisation.  The auto controller adapts K to the observed
  // rollback rate — deterministically: it sees only virtual-schedule
  // history (which tails committed or rolled back), never the wall clock,
  // so the trajectory of K is identical at every worker count.
  const bool spec_auto = speculation_ == kAutoSpeculation;
  const bool spec_on = spec_auto || speculation_ > 0;
  std::uint32_t spec_k =
      spec_auto ? 8 : static_cast<std::uint32_t>(std::max(speculation_, 0));
  std::uint32_t spec_streak = 0;

  auto worker_loop = [&](std::uint32_t w) {
    for (;;) {
      barrier_wait(w);  // window published (or stop)
      if (stop.load(std::memory_order_acquire)) return;
      for (std::uint32_t p = w; p < P; p += W) {
        exec_partition_window(partition(p));
        if (spec_on)
          exec_speculative_tail(partition(p), spec_k, limit, bounded);
      }
      barrier_wait(w);  // window complete
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(W > 0 ? W - 1 : 0);
  // Workers inherit the launching thread's session so every pool operation
  // inside the run resolves to this engine's session shard (util/lane.hpp).
  const std::uint32_t session = util::exec_session();
  for (std::uint32_t w = 1; w < W; ++w)
    threads.emplace_back([&worker_loop, session, w] {
      util::SessionGuard in_session(session);
      worker_loop(w);
    });

  auto sat_add = [](std::int64_t a, std::int64_t b) {
    return a > INT64_MAX - b ? INT64_MAX : a + b;
  };

  // Watermark trace flush: each partition's buffered record stream is
  // non-decreasing in t_ps (rollback truncates the buffer back to the
  // committed prefix), so every record strictly below the global next-event
  // floor is final.  Emitting those prefixes merged in (t, key, emit) order
  // yields a byte stream that is independent of the worker count AND of the
  // window structure — speculation changes window boundaries, never the
  // flushed stream — because the concatenation of the flushed batches is
  // simply the globally sorted record sequence.
  auto flush_traces = [&](std::int64_t floor_ps) {
    if (!tracer_) return;
    auto& scratch = par_->merge_scratch;
    scratch.clear();
    for (std::uint32_t p = 0; p < P; ++p) {
      auto& recs = par_->tracers[p].records();
      std::size_t cut = 0;
      while (cut < recs.size() && recs[cut].t_ps < floor_ps) ++cut;
      if (cut == 0) continue;
      scratch.insert(scratch.end(), std::make_move_iterator(recs.begin()),
                     std::make_move_iterator(recs.begin() +
                                             static_cast<std::ptrdiff_t>(cut)));
      recs.erase(recs.begin(),
                 recs.begin() + static_cast<std::ptrdiff_t>(cut));
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const ParallelState::BufferTracer::Rec& a,
                 const ParallelState::BufferTracer::Rec& b) {
                return std::tie(a.t_ps, a.key, a.emit) <
                       std::tie(b.t_ps, b.key, b.emit);
              });
    for (const auto& rec : scratch) {
      if (rec.is_span)
        tracer_->span(rec.track, rec.name, rec.begin, rec.end, rec.category);
      else
        tracer_->instant(rec.track, rec.name, rec.begin, rec.category);
    }
    scratch.clear();
  };

  // Commits a validated tail: the staged cross-partition sends enter the
  // destination queues (their source-assigned keys already fix the heap
  // order), the tail's records are released, and the lane journal is
  // discarded.
  auto commit_spec = [&](std::uint32_t p) {
    ParallelState::SpecState& spec = par_->spec[p];
    std::int64_t sent = 0;
    for (auto& s : spec.staged) {
      Partition& d = partition(s.dst);
      DEEP_ASSERT(s.t >= d.now,
                  "speculative commit: staged event in the past");
      d.queue.push(s.t, s.key, EventKind::Callback, nullptr, std::move(s.fn),
                   s.replayable);
      ++sent;
    }
    if (sent != 0) m_cross_events_.add(sent);
    m_speculated_events_.add(static_cast<std::int64_t>(spec.tail.size()));
    m_spec_commits_.add(1);
    spec.staged.clear();
    spec.tail.clear();
    spec.pushed.clear();
    spec.pending = false;
    if (metrics_) metrics_->spec_commit(p);
  };

  // Rolls a tail back: undoes instruments (lane journal), truncates the
  // trace buffer, restores the clock/sequence/counter snapshot, re-queues
  // the tail's events and drops everything the tail created — the creators
  // re-create those with the very same keys on re-execution, because
  // next_seq is restored.  The staged sends are destroyed unsent.
  auto rollback_spec = [&](std::uint32_t p) {
    ParallelState::SpecState& spec = par_->spec[p];
    Partition& part = partition(p);
    if (metrics_) metrics_->spec_rollback(p);
    if (tracer_) par_->tracers[p].records().resize(spec.trace_mark);
    part.now = spec.now;
    part.next_seq = spec.next_seq;
    part.events_executed = spec.events_executed;
    part.cur_key = spec.cur_key;
    part.trace_emit = spec.trace_emit;
    std::sort(spec.pushed.begin(), spec.pushed.end());
    auto& executed = par_->spec_scratch;
    executed.clear();
    for (auto& ev : spec.tail) {
      if (std::binary_search(spec.pushed.begin(), spec.pushed.end(),
                             ev.key)) {
        // Created by an earlier tail event and already executed: not in the
        // queue, and its creator re-creates it on replay.
        executed.push_back(ev.key);
      } else {
        part.queue.push(ev.t, ev.key, ev.kind, ev.proc, std::move(ev.fn),
                        ev.replayable);
      }
    }
    std::sort(executed.begin(), executed.end());
    // Tail-created events that did not execute are still queued: remove.
    std::vector<std::uint64_t> remove;
    std::set_difference(spec.pushed.begin(), spec.pushed.end(),
                        executed.begin(), executed.end(),
                        std::back_inserter(remove));
    const std::size_t removed = part.queue.remove_keys(remove);
    DEEP_ASSERT(removed == remove.size(),
                "speculative rollback: tail-created event missing");
    m_rollbacks_.add(1);
    m_rollback_events_.add(static_cast<std::int64_t>(spec.tail.size()));
    spec.staged.clear();
    spec.tail.clear();
    spec.pushed.clear();
    spec.pending = false;
    spec.failed = false;
  };

  auto sample_queue_depth = [&] {
    std::size_t queued = 0;
    for (std::uint32_t p = 0; p < P; ++p) queued += partition(p).queue.size();
    m_queue_depth_.set(static_cast<std::int64_t>(queued));
  };

  auto& next = par_->plan_next;
  auto& lb = par_->plan_lb;
  auto& done = par_->plan_done;

  bool events_remain = false;
  std::exception_ptr proc_error;
  std::exception_ptr fatal;
  bool stopped = false;
  try {
    for (;;) {
      // ---- plan: main thread only, workers parked at the barrier ----
      // Drain the rings in canonical (dst, src) order.  Events carry keys
      // assigned from their *source* partition's stream at push time, so the
      // committed order among simultaneous events is a pure function of the
      // simulation — independent of worker interleaving and of which window
      // (conservative or speculated) carried an event across.
      auto& min_in = par_->plan_min_in;
      min_in.assign(P, INT64_MAX);
      std::int64_t crossed = 0;
      for (std::uint32_t dst = 0; dst < P; ++dst) {
        Partition& d = partition(dst);
        // While a speculated tail awaits validation, d.now sits at the
        // speculated frontier; incoming events are validated against the
        // *committed* frontier (the snapshot) instead.
        const TimePoint committed =
            par_->spec[dst].pending ? par_->spec[dst].now : d.now;
        for (std::uint32_t src = 0; src < P; ++src) {
          if (src == dst) continue;
          par_->ring(src, dst).drain([&](ParallelState::CrossEvent&& ev) {
            DEEP_ASSERT(ev.t >= committed,
                        "parallel engine: cross-partition event in the past");
            d.queue.push(ev.t, ev.key, EventKind::Callback, nullptr,
                         std::move(ev.fn), ev.replayable);
            if (ev.t.ps < min_in[dst]) min_in[dst] = ev.t.ps;
            ++crossed;
          });
        }
      }
      if (crossed != 0) m_cross_events_.add(crossed);

      // ---- validate speculated tails: commit or roll back ----
      if (spec_on) {
        // Staged sends count as incoming even when their own tail rolls
        // back: re-execution re-creates them identically, so treating them
        // as arrived is a sound (and deterministic) over-approximation.
        for (std::uint32_t p = 0; p < P; ++p)
          for (const auto& s : par_->spec[p].staged)
            if (s.t.ps < min_in[s.dst]) min_in[s.dst] = s.t.ps;
        // All rollbacks run before any commit: a commit may flush staged
        // sends into a partition whose own tail just rolled back, and the
        // in-the-past check there must see the restored (committed) clock.
        bool any_rollback = false;
        bool any_commit = false;
        for (std::uint32_t p = 0; p < P; ++p) {
          ParallelState::SpecState& spec = par_->spec[p];
          if (!spec.pending) continue;
          // An arrival at or below the speculated frontier invalidates the
          // tail (at equal times the arrival's key could order first).
          if (spec.failed || min_in[p] <= spec.last_t) {
            rollback_spec(p);
            any_rollback = true;
          }
        }
        for (std::uint32_t p = 0; p < P; ++p) {
          if (!par_->spec[p].pending) continue;
          commit_spec(p);
          any_commit = true;
        }
        if (spec_auto) {
          if (any_rollback) {
            spec_k = spec_k > 2 ? spec_k / 2 : 1;
            spec_streak = 0;
          } else if (any_commit && ++spec_streak >= 16) {
            spec_k = spec_k < 256 ? spec_k * 2 : 256;
            spec_streak = 0;
          }
        }
      }

      // First escaped process exception wins, by partition id — a
      // deterministic choice because window contents are deterministic.
      for (std::uint32_t p = 0; p < P; ++p) {
        Partition& part = partition(p);
        if (part.error && !proc_error) proc_error = part.error;
        part.error = nullptr;
      }

      next.assign(P, INT64_MAX);
      std::int64_t t_min = INT64_MAX;
      for (std::uint32_t p = 0; p < P; ++p) {
        Partition& part = partition(p);
        if (part.queue.empty()) continue;
        next[p] = part.queue.next_time().ps;
        t_min = std::min(t_min, next[p]);
      }
      bool have_window = t_min != INT64_MAX && !proc_error;
      if (have_window && bounded && t_min > limit.ps) {
        have_window = false;
        events_remain = true;
      }
      if (!have_window) {
        // Drain the trace buffers: every buffered record is committed (the
        // validation pass above ran), so the flush completes the globally
        // sorted stream.  An erroring run drops its uncommitted records,
        // like a serial run stopping at a throwing event.
        if (!proc_error) flush_traces(INT64_MAX);
        stop.store(true, std::memory_order_release);
        sync.arrive_and_wait();
        stopped = true;
        break;
      }
      flush_traces(t_min);

      // Min-plus fixed point for the per-partition emission lower bounds,
      // then the safe horizons (see the file comment for the argument).
      lb = next;
      done.assign(P, 0);
      for (std::uint32_t round = 0; round < P; ++round) {
        std::uint32_t u = P;
        std::int64_t best = INT64_MAX;
        for (std::uint32_t p = 0; p < P; ++p)
          if (!done[p] && lb[p] < best) {
            best = lb[p];
            u = p;
          }
        if (u == P) break;  // the rest are unreachable
        done[u] = 1;
        const std::int64_t* row = &la[static_cast<std::size_t>(u) * P];
        for (std::uint32_t q = 0; q < P; ++q) {
          if (done[q] || row[q] == INT64_MAX) continue;
          lb[q] = std::min(lb[q], sat_add(best, row[q]));
        }
      }

      std::uint32_t active = 0;
      std::uint32_t solo = 0;
      for (std::uint32_t p = 0; p < P; ++p) {
        std::int64_t lim = INT64_MAX;
        for (std::uint32_t s = 0; s < P; ++s) {
          const std::int64_t l = la[static_cast<std::size_t>(s) * P + p];
          if (s == p || l == INT64_MAX || lb[s] == INT64_MAX) continue;
          lim = std::min(lim, sat_add(lb[s], l));
        }
        // Bounded runs additionally include events at exactly `limit`
        // (hence the +1 ps exclusive cap).
        if (bounded && lim > limit.ps) lim = sat_add(limit.ps, 1);
        partition(p).limit = TimePoint{lim};
        if (next[p] < lim) {
          ++active;
          solo = p;
        }
      }
      DEEP_ASSERT(active > 0, "parallel engine: no executable partition");
      m_windows_.add(1);
      const std::size_t before = events_executed();

      if (active == 1) {
        // ---- batched window: a single runnable partition; execute it on
        // the main thread with the workers still parked, skipping both
        // barriers.  Pure function of queue state => worker-independent.
        // Solo windows never speculate: with every other partition idle
        // there is no concurrency to win, so the tail (and all its staging
        // overhead) is skipped entirely.
        m_solo_windows_.add(1);
        exec_partition_window(partition(solo));
        m_window_events_.record(
            static_cast<std::int64_t>(events_executed() - before));
        sample_queue_depth();
        continue;
      }

      // ---- execute: all workers, partitions pinned p -> worker p % W ----
      barrier_wait(0);
      for (std::uint32_t p = 0; p < P; p += W) {
        exec_partition_window(partition(p));
        if (spec_on) exec_speculative_tail(partition(p), spec_k, limit, bounded);
      }
      barrier_wait(0);

      // ---- commit: main thread only ----
      m_window_events_.record(
          static_cast<std::int64_t>(events_executed() - before));
      // Commit-point queue-depth sample (the serial engine decimates by
      // event count instead; both are deterministic).
      sample_queue_depth();
    }
  } catch (...) {
    fatal = std::current_exception();
    if (!stopped) {
      // Workers are parked at the top-of-window barrier; release them into
      // the stop path so join() below cannot deadlock.
      stop.store(true, std::memory_order_release);
      sync.arrive_and_wait();
      stopped = true;
    }
  }
  for (auto& thread : threads) thread.join();

  parallel_run_ = false;
  for (std::uint32_t p = 0; p < P; ++p) partition(p).active_tracer = nullptr;

  if (fatal) std::rethrow_exception(fatal);
  if (proc_error) std::rethrow_exception(proc_error);

  // Align every partition clock to the committed end of the run so post-run
  // now() and scheduling read one consistent time.
  TimePoint final_now = bounded ? limit : TimePoint{};
  for (std::uint32_t p = 0; p < P; ++p)
    if (partition(p).now > final_now) final_now = partition(p).now;
  for (std::uint32_t p = 0; p < P; ++p) {
    Partition& part = partition(p);
    if (part.now < final_now) part.now = final_now;
  }
  return events_remain;
}

}  // namespace deep::sim

// Conservative parallel (windowed) execution for sim::Engine.
//
// Protocol per window, driven by the main thread with W-1 helper threads:
//
//   plan    (main only)  drain cross-partition rings into destination
//                        queues in canonical (src, dst) order, pick
//                        T = min next event time, publish the safe window
//                        [T, T + lookahead)
//   barrier
//   execute (all)        each worker runs its partitions' events with
//                        t < window_end; partition p is always executed by
//                        worker p % W, so a fiber stays on one thread for
//                        the whole run
//   barrier
//   commit  (main only)  merge buffered trace records in (time, key, emit)
//                        order, sample commit-point gauges
//
// Every side effect that could depend on thread interleaving is confined to
// a partition (queues, fibers, metric lanes, trace buffers) or serialised at
// the barriers (ring drain, trace merge), which is what makes the result
// bit-identical for every worker count.  See docs/parallel_engine.md.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>
#include <tuple>

#include "sim/parallel.hpp"

namespace deep::sim {

void Engine::exec_partition_window(Partition& part) {
  ExecScope scope(this, &part);
  try {
    while (!part.queue.empty() && part.queue.next_time() < part.limit)
      dispatch_one(part);
  } catch (...) {
    // Deterministically propagated by the main thread after the barrier
    // (lowest partition id wins); the partition's remaining events stay
    // queued, exactly like a serial run stopping at a throwing event.
    part.error = std::current_exception();
  }
}

bool Engine::run_windowed(TimePoint limit, bool bounded) {
  DEEP_EXPECT(lookahead_.ps > 0,
              "Engine: multi-partition runs require set_lookahead(> 0) — the "
              "minimum cross-partition link latency");
  const std::uint32_t P = partitions();
  if (!par_) par_ = std::make_unique<ParallelState>(*this);
  if (metrics_) metrics_->ensure_lanes(P);
  const std::uint32_t W = std::min(workers_, P);

  for (std::uint32_t p = 0; p < P; ++p)
    partition(p).active_tracer = tracer_ ? &par_->tracers[p] : nullptr;
  parallel_run_ = true;

  std::barrier<> sync(static_cast<std::ptrdiff_t>(W));
  std::atomic<bool> stop{false};

  auto worker_loop = [&](std::uint32_t w) {
    for (;;) {
      sync.arrive_and_wait();  // window published (or stop)
      if (stop.load(std::memory_order_acquire)) return;
      for (std::uint32_t p = w; p < P; p += W)
        exec_partition_window(partition(p));
      sync.arrive_and_wait();  // window complete
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(W > 0 ? W - 1 : 0);
  for (std::uint32_t w = 1; w < W; ++w) threads.emplace_back(worker_loop, w);

  bool events_remain = false;
  std::exception_ptr proc_error;
  std::exception_ptr fatal;
  bool stopped = false;
  try {
    for (;;) {
      // ---- plan: main thread only, workers parked at the barrier ----
      // Drain the rings in canonical (dst, src) order and re-key into the
      // destination's sequence stream: the keys — and therefore the
      // committed order among simultaneous events — cannot depend on how
      // worker execution interleaved during the window.
      std::int64_t crossed = 0;
      for (std::uint32_t dst = 0; dst < P; ++dst) {
        Partition& d = partition(dst);
        for (std::uint32_t src = 0; src < P; ++src) {
          if (src == dst) continue;
          par_->ring(src, dst).drain([&](ParallelState::CrossEvent&& ev) {
            DEEP_ASSERT(ev.t >= d.now,
                        "parallel engine: cross-partition event in the past");
            d.queue.push(ev.t, d.make_key(), EventKind::Callback, nullptr,
                         std::move(ev.fn));
            ++crossed;
          });
        }
      }
      if (crossed != 0) m_cross_events_.add(crossed);

      // First escaped process exception wins, by partition id — a
      // deterministic choice because window contents are deterministic.
      for (std::uint32_t p = 0; p < P; ++p) {
        Partition& part = partition(p);
        if (part.error && !proc_error) proc_error = part.error;
        part.error = nullptr;
      }

      TimePoint t_min{INT64_MAX};
      for (std::uint32_t p = 0; p < P; ++p) {
        Partition& part = partition(p);
        if (!part.queue.empty() && part.queue.next_time() < t_min)
          t_min = part.queue.next_time();
      }
      bool have_window = t_min.ps != INT64_MAX && !proc_error;
      if (have_window && bounded && t_min > limit) {
        have_window = false;
        events_remain = true;
      }
      if (!have_window) {
        stop.store(true, std::memory_order_release);
        sync.arrive_and_wait();
        stopped = true;
        break;
      }

      // Conservative window: no partition can affect another before
      // T + lookahead, so everything below that horizon is safe to run
      // without further coordination.  Bounded runs additionally include
      // events at exactly `limit` (hence the +1 ps exclusive cap).
      TimePoint window_end = t_min + lookahead_;
      if (bounded && window_end.ps > limit.ps + 1) window_end.ps = limit.ps + 1;
      for (std::uint32_t p = 0; p < P; ++p) partition(p).limit = window_end;
      m_windows_.add(1);

      // ---- execute: all workers, partitions pinned p -> worker p % W ----
      sync.arrive_and_wait();
      for (std::uint32_t p = 0; p < P; p += W)
        exec_partition_window(partition(p));
      sync.arrive_and_wait();

      // ---- commit: main thread only ----
      if (tracer_) {
        auto& scratch = par_->merge_scratch;
        scratch.clear();
        for (std::uint32_t p = 0; p < P; ++p) {
          auto& recs = par_->tracers[p].records();
          scratch.insert(scratch.end(),
                         std::make_move_iterator(recs.begin()),
                         std::make_move_iterator(recs.end()));
          recs.clear();
        }
        // (t, key, emit) is unique per record, so the order — and the trace
        // file — is identical for every worker count.
        std::sort(scratch.begin(), scratch.end(),
                  [](const ParallelState::BufferTracer::Rec& a,
                     const ParallelState::BufferTracer::Rec& b) {
                    return std::tie(a.t_ps, a.key, a.emit) <
                           std::tie(b.t_ps, b.key, b.emit);
                  });
        for (const auto& rec : scratch) {
          if (rec.is_span)
            tracer_->span(rec.track, rec.name, rec.begin, rec.end,
                          rec.category);
          else
            tracer_->instant(rec.track, rec.name, rec.begin, rec.category);
        }
        scratch.clear();
      }
      // Commit-point queue-depth sample (the serial engine decimates by
      // event count instead; both are deterministic).
      std::size_t queued = 0;
      for (std::uint32_t p = 0; p < P; ++p) queued += partition(p).queue.size();
      m_queue_depth_.set(static_cast<std::int64_t>(queued));
    }
  } catch (...) {
    fatal = std::current_exception();
    if (!stopped) {
      // Workers are parked at the top-of-window barrier; release them into
      // the stop path so join() below cannot deadlock.
      stop.store(true, std::memory_order_release);
      sync.arrive_and_wait();
      stopped = true;
    }
  }
  for (auto& thread : threads) thread.join();

  parallel_run_ = false;
  for (std::uint32_t p = 0; p < P; ++p) partition(p).active_tracer = nullptr;

  if (fatal) std::rethrow_exception(fatal);
  if (proc_error) std::rethrow_exception(proc_error);

  // Align every partition clock to the committed end of the run so post-run
  // now() and scheduling read one consistent time.
  TimePoint final_now = bounded ? limit : TimePoint{};
  for (std::uint32_t p = 0; p < P; ++p)
    if (partition(p).now > final_now) final_now = partition(p).now;
  for (std::uint32_t p = 0; p < P; ++p) {
    Partition& part = partition(p);
    if (part.now < final_now) part.now = final_now;
  }
  return events_remain;
}

}  // namespace deep::sim

#pragma once
// Engine-internal state for conservative parallel (windowed) execution.
//
// This header is private to the sim layer: it defines Engine::ParallelState,
// which engine.cpp (scheduling entry points, teardown) and parallel.cpp (the
// windowed executor) share.  User code includes sim/engine.hpp only; the
// design is described in docs/parallel_engine.md.
//
// Pieces:
//
//  * CrossRing — a bounded SPSC ring per (src, dst) partition pair carrying
//    cross-partition events.  The producer is the single worker thread
//    executing the source partition during a window; the consumer is the
//    main thread draining at the window barrier (while all producers are
//    parked), so push is wait-free and drain needs no synchronisation beyond
//    the barrier itself.  A full ring falls back to a mutex-guarded overflow
//    vector — correctness never depends on the capacity, only throughput.
//
//  * BufferTracer — the per-partition Tracer interposed while a window runs.
//    Records are tagged with (event time, event key, emit index); at commit
//    the main thread merges all partitions' records in that canonical order
//    into the user's tracer, so trace output is byte-identical for every
//    worker count.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace deep::sim {

struct Engine::ParallelState {
  struct CrossEvent {
    TimePoint t;
    std::uint64_t key;  // assigned from the *source* partition's stream at
                        // push time, so heap order never depends on which
                        // window (or speculation) delivered the event
    bool replayable;
    EventFn fn;
  };

  class CrossRing {
   public:
    static constexpr std::size_t kCapacity = 256;

    CrossRing() : slots_(kCapacity) {}
    CrossRing(const CrossRing&) = delete;
    CrossRing& operator=(const CrossRing&) = delete;

    /// Producer side (the source partition's worker, inside a window).
    void push(CrossEvent&& ev) {
      const std::size_t h = head_.load(std::memory_order_relaxed);
      const std::size_t t = tail_.load(std::memory_order_acquire);
      if (h - t < slots_.size()) {
        slots_[h % slots_.size()] = std::move(ev);
        head_.store(h + 1, std::memory_order_release);
        return;
      }
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_.push_back(std::move(ev));
    }

    /// Consumer side (main thread at a window barrier, producers parked).
    /// Invokes `sink(CrossEvent&&)` in push order.
    template <typename Sink>
    void drain(Sink&& sink) {
      std::size_t t = tail_.load(std::memory_order_relaxed);
      const std::size_t h = head_.load(std::memory_order_acquire);
      while (t != h) {
        sink(std::move(slots_[t % slots_.size()]));
        ++t;
      }
      tail_.store(t, std::memory_order_release);
      // The barrier orders overflow_ writes before this read; the mutex only
      // serialises producers' own push-vs-push (there is one producer, so it
      // is contention-free) and keeps TSan happy about the rare path.
      std::lock_guard<std::mutex> lock(overflow_mu_);
      for (CrossEvent& ev : overflow_) sink(std::move(ev));
      overflow_.clear();
    }

   private:
    std::vector<CrossEvent> slots_;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
    std::mutex overflow_mu_;
    std::vector<CrossEvent> overflow_;
  };

  /// Buffers trace records during a partition's window, tagged for the
  /// canonical-order merge at commit.
  class BufferTracer final : public Tracer {
   public:
    struct Rec {
      std::int64_t t_ps;    // virtual time of the emitting event
      std::uint64_t key;    // ...and its queue key (unique, reproducible)
      std::uint64_t emit;   // per-partition tie-break within one event
      bool is_span;
      std::string track;
      std::string name;
      std::string category;
      TimePoint begin;
      TimePoint end;
    };

    explicit BufferTracer(Engine::Partition& part) : part_(&part) {}

    void span(const std::string& track, const std::string& name,
              TimePoint begin, TimePoint end,
              const std::string& category) override {
      recs_.push_back(Rec{part_->now.ps, part_->cur_key, part_->trace_emit++,
                          true, track, name, category, begin, end});
    }

    void instant(const std::string& track, const std::string& name,
                 TimePoint t, const std::string& category) override {
      recs_.push_back(Rec{part_->now.ps, part_->cur_key, part_->trace_emit++,
                          false, track, name, category, t, t});
    }

    std::vector<Rec>& records() { return recs_; }

   private:
    Engine::Partition* part_;
    std::vector<Rec> recs_;
  };

  /// Per-partition speculative-tail state (docs/parallel_engine.md
  /// §Speculative windows).  Filled by the partition's executor during the
  /// window (thread-confined), validated and committed or rolled back by the
  /// main thread at the next plan step while all executors are parked.
  struct SpecState {
    struct Staged {
      std::uint32_t dst;
      TimePoint t;
      std::uint64_t key;
      bool replayable;
      EventFn fn;
    };
    bool pending = false;      // tail executed, awaiting validation
    bool failed = false;       // tail threw mid-flight: always roll back
    std::int64_t last_t = 0;   // latest speculated event time
    std::vector<EventQueue::Dispatched> tail;  // executed records, in order
    std::vector<Staged> staged;                // withheld cross-partition sends
    std::vector<std::uint64_t> pushed;         // keys pushed locally by the tail
    // Snapshot of the committed frontier, restored on rollback.
    TimePoint now{};
    std::uint64_t next_seq = 0;
    std::size_t events_executed = 0;
    std::uint64_t cur_key = 0;
    std::uint64_t trace_emit = 0;
    std::size_t trace_mark = 0;  // BufferTracer record count at tail start
  };

  explicit ParallelState(Engine& engine) : nparts(engine.partitions()) {
    rings.resize(static_cast<std::size_t>(nparts) * nparts);
    spec.resize(nparts);
    for (std::uint32_t p = 0; p < nparts; ++p)
      tracers.emplace_back(engine.partition(p));
  }

  CrossRing& ring(std::uint32_t src, std::uint32_t dst) {
    return rings[static_cast<std::size_t>(src) * nparts + dst];
  }

  std::uint32_t nparts;
  // CrossRing holds atomics (immovable), so the flat (src, dst) matrix lives
  // in a deque resized once at construction.
  std::deque<CrossRing> rings;
  std::deque<BufferTracer> tracers;  // one per partition, stable addresses
  std::deque<SpecState> spec;        // one per partition, stable addresses
  std::vector<BufferTracer::Rec> merge_scratch;

  // Plan-step scratch (main thread only): the effective (src, dst) pair
  // lookahead matrix resolved at run start, and the per-partition arrays of
  // the min-plus horizon computation (INT64_MAX = unconstrained/none).
  std::vector<std::int64_t> eff_la;
  std::vector<std::int64_t> plan_next;  // next event time per partition
  std::vector<std::int64_t> plan_lb;    // emission lower bound per partition
  std::vector<char> plan_done;          // lower bound finalised
  std::vector<std::int64_t> plan_min_in;  // min incoming event time per dst
  std::vector<std::uint64_t> spec_scratch;  // rollback key bookkeeping
};

}  // namespace deep::sim

#pragma once
// Pooled event queue for the simulation engine.
//
// Two de-fattening measures versus the old std::priority_queue<Event> of
// std::function callbacks, which dominated engine wall-clock:
//
//  * EventFn — a move-only callable with a 48-byte inline buffer.  Engine
//    callbacks overwhelmingly capture a pointer or two, so they are stored
//    in place with no heap allocation; larger captures fall back to the
//    heap transparently.  Process bookkeeping events (spawn slices, wake
//    resumes, sleep expiries) skip the callable entirely: they are a tagged
//    (EventKind, Process*) pair, costing nothing to create or destroy.
//
//  * EventQueue — a 4-ary implicit min-heap of 24-byte (time, seq, slot)
//    entries over a free-list slot pool holding the payloads.  Sift
//    operations move only the small entries (4-ary halves the tree depth
//    versus binary and keeps children on one cache line); payloads never
//    move after insertion, and dispatched slots are recycled through the
//    free list so a steady-state simulation performs no queue allocations
//    at all.
//
// Ordering is (time, key) — strictly FIFO among simultaneous events — which
// the engine relies on for determinism.  The key is an opaque 64-bit value
// chosen by the engine: a plain sequence number in serial runs, and a
// partition-tagged sequence ((partition << 40) | seq) in partitioned runs so
// every event in the system has a globally unique, reproducible rank that
// does not depend on worker interleaving (see docs/parallel_engine.md).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace deep::sim {

class Process;

/// Move-only callable with small-buffer optimization, used for scheduled
/// event callbacks.  Constructible from any nullary callable.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) { ::new (dst) D*(*static_cast<D**>(src)); },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void move_from(EventFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

/// What a queued event does when dispatched.  Process events carry only the
/// target pointer; the engine interprets the kind against the process's
/// *current* state, so an event that went stale (the process was killed, or
/// already resumed through another path) is ignored instead of misfiring.
enum class EventKind : std::uint8_t {
  Callback,     // run EventFn
  StartSlice,   // give the process a slice unconditionally (spawn)
  Resume,       // resume iff the process is still Waiting (wake delivery)
  SleepExpiry,  // resume iff the process is still Sleeping (delay expiry)
};

/// 4-ary implicit min-heap over a pooled slot array; see file comment.
class EventQueue {
 public:
  /// A dispatched event, with the payload moved out of its (recycled) slot.
  struct Dispatched {
    TimePoint t;
    std::uint64_t key;  // the ordering key it was pushed with
    EventKind kind;
    Process* proc;
    bool replayable;
    EventFn fn;
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  TimePoint next_time() const { return heap_.front().t; }
  /// Whether the earliest queued event is marked replayable (speculation
  /// candidate, docs/parallel_engine.md); only valid when !empty().
  bool next_replayable() const { return pool_[heap_.front().slot].replayable; }

  void push(TimePoint t, std::uint64_t seq, EventKind kind, Process* proc,
            EventFn fn, bool replayable = false) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    Record& r = pool_[slot];
    r.kind = kind;
    r.proc = proc;
    r.replayable = replayable;
    r.fn = std::move(fn);
    heap_.push_back(Entry{t, seq, slot});
    sift_up(heap_.size() - 1);
  }

  /// Removes every queued entry whose key appears in `keys` (must be sorted
  /// ascending), destroying the payload and recycling the slot, then
  /// restores the heap invariant with a bulk heapify.  O(n log k) — used
  /// only by speculative rollback, which is rare by construction.
  std::size_t remove_keys(const std::vector<std::uint64_t>& keys) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const Entry e = heap_[i];
      if (std::binary_search(keys.begin(), keys.end(), e.seq)) {
        Record& r = pool_[e.slot];
        r.fn = EventFn{};
        r.proc = nullptr;
        free_.push_back(e.slot);
      } else {
        heap_[out++] = e;
      }
    }
    const std::size_t removed = heap_.size() - out;
    heap_.resize(out);
    for (std::size_t i = (heap_.size() + 2) / 4; i-- > 0;) sift_down(i);
    return removed;
  }

  Dispatched pop() {
    const Entry top = heap_.front();
    Record& r = pool_[top.slot];
    Dispatched d{top.t, top.seq, r.kind, r.proc, r.replayable,
                 std::move(r.fn)};
    free_.push_back(top.slot);
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    return d;
  }

 private:
  struct Entry {
    TimePoint t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Record {
    EventKind kind = EventKind::Callback;
    bool replayable = false;
    Process* proc = nullptr;
    EventFn fn;
  };

  static bool before(const Entry& a, const Entry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;   // 4-ary implicit min-heap of (t, seq, slot)
  std::vector<Record> pool_;  // slot payloads; stable while queued
  std::vector<std::uint32_t> free_;  // recycled slot indices
};

}  // namespace deep::sim

#pragma once
// Topology-driven auto-partitioning: the pure graph half.
//
// partition_graph() splits an undirected locality graph into P balanced,
// connected-where-possible blocks by greedy BFS growth: each block starts
// from the lowest-id unassigned vertex and absorbs neighbours
// (lowest-id-first) until it reaches its size target
// ceil(remaining / remaining_blocks).  The result is fully deterministic —
// a pure function of (graph, P) — which is what the auto-vs-manual
// equivalence tests rely on.
//
// The net layer adapts concrete fabrics to this via net::auto_partition()
// (net/partition.hpp), which builds the graph from Fabric::topology_edges().

#include <cstdint>
#include <utility>
#include <vector>

namespace deep::sim {

struct PartitionGraph {
  std::size_t vertices = 0;
  // Undirected edges as (a, b) vertex-index pairs; duplicates and self-loops
  // are tolerated (ignored).
  std::vector<std::pair<std::size_t, std::size_t>> edges;
};

/// Assigns every vertex to one of `parts` blocks (returned value:
/// vertex index -> block in [0, parts)).  Blocks are balanced to within one
/// vertex; each is grown through the edge relation from the lowest
/// unassigned vertex, so blocks follow the topology's locality whenever the
/// graph is connected.  Requires 1 <= parts <= vertices.
std::vector<std::uint32_t> partition_graph(const PartitionGraph& graph,
                                           std::uint32_t parts);

}  // namespace deep::sim

#pragma once
// Fabric interface: a network that connects attached nodes and delivers
// Messages to their NICs after a modelled delay.

#include <memory>
#include <string>
#include <unordered_map>

#include "net/message.hpp"
#include "net/nic.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace deep::net {

/// Aggregate traffic statistics every fabric keeps.
struct FabricStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  sim::Summary delivery_us;  // end-to-end per-message latency in microseconds
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const std::string& name() const { return name_; }
  sim::Engine& engine() const { return *engine_; }

  /// Attaches a node; returns its NIC on this fabric (stable reference).
  virtual Nic& attach(hw::NodeId node) {
    auto [it, inserted] = nics_.try_emplace(node, nullptr);
    DEEP_EXPECT(inserted, "Fabric::attach: node already attached");
    it->second = std::make_unique<Nic>(node);
    return *it->second;
  }

  bool attached(hw::NodeId node) const { return nics_.contains(node); }

  Nic& nic(hw::NodeId node) {
    auto it = nics_.find(node);
    DEEP_EXPECT(it != nics_.end(), "Fabric::nic: node not attached");
    return *it->second;
  }

  /// Injects a message; the fabric delivers it to the destination NIC after
  /// its modelled delay.  `svc` selects the service class (VELO/RMA on
  /// EXTOLL-like fabrics).
  virtual void send(Message msg, Service svc) = 0;

  const FabricStats& stats() const { return stats_; }

 protected:
  /// Schedules delivery at absolute time `at` and books the statistics.
  void deliver_at(sim::TimePoint at, Message msg) {
    stats_.messages += 1;
    stats_.bytes += msg.size_bytes;
    stats_.delivery_us.add((at - engine_->now()).micros());
    if (auto* tracer = engine_->tracer()) {
      tracer->span(name_ + " wire",
                   std::to_string(msg.src) + "->" + std::to_string(msg.dst) +
                       " " + std::to_string(msg.size_bytes) + "B",
                   engine_->now(), at, "net");
    }
    auto* nic = nics_.at(msg.dst).get();
    engine_->schedule_at(
        at, [nic, m = std::move(msg)]() mutable { nic->deliver(std::move(m)); });
  }

  sim::Engine* engine_;
  std::string name_;
  std::unordered_map<hw::NodeId, std::unique_ptr<Nic>> nics_;
  FabricStats stats_;
};

}  // namespace deep::net

#pragma once
// Fabric interface: a network that connects attached nodes and delivers
// Messages to their NICs after a modelled delay.
//
// Fault model (see docs/fault_injection.md): every fabric carries an
// administrative link-state table (set_link_up) and an optional per-message
// drop hook (set_drop_fn, installed by net::FaultPlan for probabilistic
// faults).  A message whose route crosses a dead link, or that the drop hook
// selects, is *dropped*: counted in FabricStats::messages_dropped and handed
// to the drop handler (the CBP bridge retries frames, the MPI layer turns
// losses into error codes).  With no dead links and no drop hook installed
// the fault path costs one branch per send.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/nic.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/lane.hpp"

namespace deep::net {

/// Aggregate traffic statistics every fabric keeps.
struct FabricStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t messages_dropped = 0;  // lost to dead links / injected drops
  sim::Summary delivery_us;  // end-to-end per-message latency in microseconds

  void merge(const FabricStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    messages_dropped += other.messages_dropped;
    delivery_us.merge(other.delivery_us);
  }
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {
    // Metrics handles (null when no registry is attached to the engine —
    // recording is then a single branch, same contract as the tracer).
    if (auto* metrics = engine_->metrics()) {
      m_messages_ = metrics->counter("net." + name_ + ".messages");
      m_bytes_ = metrics->counter("net." + name_ + ".bytes");
      m_dropped_ = metrics->counter("net." + name_ + ".dropped");
      m_delivery_ns_ = metrics->histogram("net." + name_ + ".delivery_ns");
    }
  }
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const std::string& name() const { return name_; }
  sim::Engine& engine() const { return *engine_; }

  /// Attaches a node; returns its NIC on this fabric (stable reference).
  virtual Nic& attach(hw::NodeId node) {
    auto [it, inserted] = nics_.try_emplace(node, nullptr);
    DEEP_EXPECT(inserted, "Fabric::attach: node already attached");
    it->second = std::make_unique<Nic>(node);
    return *it->second;
  }

  bool attached(hw::NodeId node) const { return nics_.contains(node); }

  Nic& nic(hw::NodeId node) {
    auto it = nics_.find(node);
    DEEP_EXPECT(it != nics_.end(), "Fabric::nic: node not attached");
    return *it->second;
  }

  /// Injects a message; the fabric delivers it to the destination NIC after
  /// its modelled delay.  `svc` selects the service class (VELO/RMA on
  /// EXTOLL-like fabrics).
  virtual void send(Message msg, Service svc) = 0;

  /// A conservative lower bound on the delay between injecting any message
  /// and its delivery: every send() schedules its NIC callback no earlier
  /// than now() + lookahead().  The parallel engine derives its safe-window
  /// widths from the fabrics' lookaheads (docs/parallel_engine.md).  The
  /// base fabric promises nothing.
  virtual sim::Duration lookahead() const { return sim::Duration{0}; }

  /// Per-partition-pair lower bound: no send() executing on partition
  /// `src_part` schedules anything onto partition `dst_part` earlier than
  /// now() + lookahead(src_part, dst_part).  Topology-aware fabrics (torus,
  /// fat tree) tighten this with actual route distance; the base promise is
  /// the uniform lookahead when both partitions have nodes on this fabric
  /// and "unconstrained" when either has none (such pairs never interact
  /// through this fabric).  net::install_pair_lookahead() folds the per-pair
  /// minima over all fabrics into the engine.
  virtual sim::Duration lookahead(std::uint32_t src_part,
                                  std::uint32_t dst_part) const {
    if (src_part == dst_part || !has_partition_nodes(src_part) ||
        !has_partition_nodes(dst_part))
      return sim::kUnconstrainedLookahead;
    return lookahead();
  }

  /// Merged traffic statistics (booked into per-execution-lane shards, so
  /// partitioned sends never contend; computed on read).
  FabricStats stats() const {
    FabricStats out;
    for (const FabricStats& shard : shards_) out.merge(shard);
    return out;
  }

  // -- partition placement ----------------------------------------------------

  /// Declares that `node` lives on engine partition `p` (see
  /// sim::Engine::set_partitions).  Nodes default to partition 0.  Call
  /// before the run, after attach(); deliveries then cross partitions via
  /// Engine::schedule_on and the fabric's lookahead(p, q) contract applies.
  void set_node_partition(hw::NodeId node, std::uint32_t p) {
    DEEP_EXPECT(attached(node), "Fabric::set_node_partition: not attached");
    DEEP_EXPECT(p < engine_->partitions(),
                "Fabric::set_node_partition: no such partition");
    auto [it, inserted] = node_partition_.try_emplace(node, p);
    if (!inserted) it->second = p;
    on_node_partition(node, p);
  }

  /// The partition `node`'s NIC events run on (0 unless assigned).
  std::uint32_t partition_of(hw::NodeId node) const {
    auto it = node_partition_.find(node);
    return it == node_partition_.end() ? 0 : it->second;
  }

  /// True once any node has an explicit partition assignment.
  bool partitioned() const { return !node_partition_.empty(); }

  /// True when at least one attached node lives on partition `p`.
  bool has_partition_nodes(std::uint32_t p) const {
    std::size_t assigned = 0;
    for (const auto& [node, part] : node_partition_) {
      (void)node;
      if (part == p) return true;
      ++assigned;
    }
    // Unassigned nodes default to partition 0.
    return p == 0 && assigned < nics_.size();
  }

  // -- topology introspection (for auto-partitioning) -------------------------

  /// Attached node ids in ascending order.
  std::vector<hw::NodeId> attached_ids() const {
    std::vector<hw::NodeId> ids;
    ids.reserve(nics_.size());
    for (const auto& [node, nic] : nics_) {
      (void)nic;
      ids.push_back(node);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Locality edges between attached nodes, for net::auto_partition():
  /// nodes joined by an edge are cheap to co-locate.  Topology-aware
  /// fabrics override this with their real adjacency; the distance-uniform
  /// base offers a chain in id order (any contiguous split is as good as
  /// any other).
  virtual std::vector<std::pair<hw::NodeId, hw::NodeId>> topology_edges()
      const {
    std::vector<hw::NodeId> ids = attached_ids();
    std::vector<std::pair<hw::NodeId, hw::NodeId>> edges;
    for (std::size_t i = 0; i + 1 < ids.size(); ++i)
      edges.emplace_back(ids[i], ids[i + 1]);
    return edges;
  }

  // -- fault injection --------------------------------------------------------

  /// Marks the link between two attached nodes dead (up=false) or healed.
  /// The pair is unordered (both directions fail together, like pulling a
  /// cable).  `a == b` kills the node's own fabric access (NIC failure).
  void set_link_up(hw::NodeId a, hw::NodeId b, bool up) {
    DEEP_EXPECT(attached(a) && attached(b),
                "Fabric::set_link_up: node not attached");
    if (up)
      down_links_.erase(link_pair(a, b));
    else
      down_links_.insert(link_pair(a, b));
  }

  /// True unless set_link_up(a, b, false) is in effect.
  bool link_up(hw::NodeId a, hw::NodeId b) const {
    return !down_links_.contains(link_pair(a, b));
  }

  std::size_t links_down() const { return down_links_.size(); }

  /// Per-message drop hook (probabilistic fault injection).  Consulted once
  /// per send; returning true drops the message.  Pass nullptr to clear.
  using DropFn = std::function<bool(const Message&)>;
  void set_drop_fn(DropFn fn) { drop_fn_ = std::move(fn); }

  /// Handler invoked with every dropped message (after the drop is counted).
  /// Installed by the transport layer to drive retries / loss reporting;
  /// one handler per fabric.
  using DropHandler = std::function<void(Message&&)>;
  void set_drop_handler(DropHandler handler) {
    drop_handler_ = std::move(handler);
  }

 protected:
  /// Hook for subclasses that cache partition-derived state (the torus
  /// rebuilds its coordinate-ownership map).  Called under set_node_partition.
  virtual void on_node_partition(hw::NodeId node, std::uint32_t p) {
    (void)node;
    (void)p;
  }

  /// This execution lane's statistics shard.  A partition's events run on
  /// exactly one lane per window, so shard booking is race-free.
  FabricStats& stats_shard() { return shards_[util::exec_lane()]; }

  /// True when the path this fabric would route src->dst over is usable.
  /// The base implementation knows only the endpoints; topology-aware
  /// fabrics (the torus) override it to walk the actual route.  Called only
  /// while at least one link is down.
  virtual bool route_up(hw::NodeId src, hw::NodeId dst) const {
    return link_up(src, dst);
  }

  /// Fault gate, called at the top of every send() override: returns true
  /// (and consumes `msg`) when the message is dropped.  Costs one branch
  /// when no faults are configured.
  bool faulted(Message& msg) {
    if (down_links_.empty() && !drop_fn_) return false;
    const bool blocked =
        !down_links_.empty() &&
        (!link_up(msg.src, msg.src) || !link_up(msg.dst, msg.dst) ||
         !route_up(msg.src, msg.dst));
    if (!blocked && !(drop_fn_ && drop_fn_(msg))) return false;
    drop(std::move(msg));
    return true;
  }

  /// Books and reports a dropped message.
  void drop(Message&& msg) {
    stats_shard().messages_dropped += 1;
    m_dropped_.add(1);
    if (auto* tracer = engine_->tracer()) {
      tracer->instant(name_ + " wire",
                      "drop " + std::to_string(msg.src) + "->" +
                          std::to_string(msg.dst) + " " +
                          std::to_string(msg.size_bytes) + "B",
                      engine_->now(), "fault");
    }
    if (drop_handler_) drop_handler_(std::move(msg));
  }

  /// Schedules delivery at absolute time `at` and books the statistics.
  ///
  /// Fabric deliveries are *not* replayable: the scheduled closure consumes a
  /// pooled message slot, so it cannot be re-invoked after a speculative
  /// rollback.  Fabric traffic therefore never originates inside a speculated
  /// tail — events that send on a fabric must not be marked replayable.
  void deliver_at(sim::TimePoint at, Message msg) {
    DEEP_ASSERT(!engine_->speculating(),
                "Fabric::deliver_at: fabric send inside a speculated tail "
                "(the sending event was wrongly marked replayable)");
    FabricStats& shard = stats_shard();
    shard.messages += 1;
    shard.bytes += msg.size_bytes;
    shard.delivery_us.add((at - engine_->now()).micros());
    m_messages_.add(1);
    m_bytes_.add(msg.size_bytes);
    m_delivery_ns_.record((at - engine_->now()).ps / 1000);
    if (auto* tracer = engine_->tracer()) {
      tracer->span(name_ + " wire",
                   std::to_string(msg.src) + "->" + std::to_string(msg.dst) +
                       " " + std::to_string(msg.size_bytes) + "B",
                   engine_->now(), at, "net");
    }
    // Park the message in a pooled slot: the capture is {Nic*, PooledMessage}
    // (16 bytes), so the event fits the engine's inline buffer and the whole
    // schedule-deliver round trip allocates nothing in steady state.
    auto* nic = nics_.at(msg.dst).get();
    if (node_partition_.empty()) {
      // Unpartitioned fabric: historical path, bit-identical scheduling.
      engine_->schedule_at(at,
                           [nic, m = PooledMessage(std::move(msg))]() mutable {
                             nic->deliver(m.take());
                           });
      return;
    }
    engine_->schedule_on(partition_of(msg.dst), at,
                         [nic, m = PooledMessage(std::move(msg))]() mutable {
                           nic->deliver(m.take());
                         });
  }

  sim::Engine* engine_;
  std::string name_;
  std::unordered_map<hw::NodeId, std::unique_ptr<Nic>> nics_;
  std::vector<FabricStats> shards_ =
      std::vector<FabricStats>(util::kMaxLanes);  // indexed by execution lane
  std::unordered_map<hw::NodeId, std::uint32_t> node_partition_;
  obs::Counter m_messages_;
  obs::Counter m_bytes_;
  obs::Counter m_dropped_;
  obs::Histogram m_delivery_ns_;

 private:
  static std::pair<hw::NodeId, hw::NodeId> link_pair(hw::NodeId a,
                                                     hw::NodeId b) {
    return a <= b ? std::pair{a, b} : std::pair{b, a};
  }

  std::set<std::pair<hw::NodeId, hw::NodeId>> down_links_;
  DropFn drop_fn_;
  DropHandler drop_handler_;
};

}  // namespace deep::net

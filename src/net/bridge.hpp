#pragma once
// BridgeFabric: the partition-aware Cluster–Booster interface.
//
// The DEEP architecture couples two independent interconnects — the
// cluster's InfiniBand-class crossbar and the booster's EXTOLL torus —
// through a dedicated bridge.  BridgeFabric models that coupling as a
// constant-latency, per-source-serialised pipe, and it is the one fabric
// that may span *engine partitions* (sim::Engine::set_partitions):
// each endpoint is registered with its home partition (attach_in) and
// delivery is scheduled onto the destination's partition, so a partitioned
// engine can run each island's fabric in parallel while the bridge carries
// the cross-island traffic.  The bridge's latency is exactly the kind of
// physical lower bound the parallel engine needs: set the engine lookahead
// to (at most) the minimum bridge lookahead() and the conservative window
// protocol is sound (docs/parallel_engine.md).
//
// Thread-safety contract (only relevant when the engine is partitioned):
//  * attach/attach_in happen before the run (single-threaded setup);
//  * send() runs on the source endpoint's partition: the per-source tx
//    booking it mutates is keyed by source node, hence partition-confined;
//  * traffic statistics go to per-lane shards merged on read;
//  * delivery crosses partitions through Engine::schedule_on, the NIC is
//    touched only by its destination partition.
//
// Fault injection (set_link_up / set_drop_fn) is NOT supported on the
// bridge: the fault bookkeeping in the Fabric base is partition-agnostic
// shared state.  Inject faults on the island fabrics instead.

#include <vector>

#include "net/fabric.hpp"
#include "util/lane.hpp"

namespace deep::net {

struct BridgeParams {
  sim::Duration latency = sim::from_micros(2.0);  // NIC + bridge + NIC
  double bandwidth_bytes_per_sec = 8.0e9;         // per source direction
};

class BridgeFabric final : public Fabric {
 public:
  BridgeFabric(sim::Engine& engine, std::string name, BridgeParams params)
      : Fabric(engine, std::move(name)), params_(params) {
    DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
                "BridgeFabric: bandwidth must be positive");
    DEEP_EXPECT(params_.latency.ps > 0,
                "BridgeFabric: latency must be positive (it bounds the "
                "parallel engine's lookahead)");
  }

  const BridgeParams& params() const { return params_; }

  /// Every message pays at least the constant bridge latency — uniformly,
  /// for every partition pair with bridge endpoints (the base per-pair
  /// lookahead already reports pairs without endpoints as unconstrained).
  sim::Duration lookahead() const override { return params_.latency; }

  /// Attaches a node that lives on engine partition `p` (see
  /// sim::Engine::spawn_on).  Plain attach() places the node on partition 0.
  Nic& attach_in(hw::NodeId node, std::uint32_t p) {
    Nic& nic = Fabric::attach(node);
    set_node_partition(node, p);
    tx_free_.try_emplace(node);  // pre-created: send() must not mutate the map
    return nic;
  }

  Nic& attach(hw::NodeId node) override { return attach_in(node, 0); }

  void send(Message msg, Service svc) override {
    DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
                "BridgeFabric::send: endpoint not attached");
    DEEP_EXPECT(msg.size_bytes >= 0, "BridgeFabric::send: negative size");
    const sim::TimePoint now = engine_->now();
    const sim::Duration wire = serialisation(msg.size_bytes);

    sim::TimePoint deliver;
    if (svc == Service::Control) {
      // Priority channel: latency only, no queueing behind bulk.
      deliver = now + params_.latency + wire;
    } else {
      sim::TimePoint& tx = tx_free_.at(msg.src);
      const sim::TimePoint tx_start = std::max(now, tx);
      tx = tx_start + wire;
      deliver = tx_start + wire + params_.latency;
    }
    // Booking and the cross-partition delivery hop both live in the base:
    // per-lane stat shards, and schedule_on to the destination's partition.
    deliver_at(deliver, std::move(msg));
  }

  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 private:
  BridgeParams params_;
  std::unordered_map<hw::NodeId, sim::TimePoint> tx_free_;
};

}  // namespace deep::net

#pragma once
// BridgeFabric: the partition-aware Cluster–Booster interface.
//
// The DEEP architecture couples two independent interconnects — the
// cluster's InfiniBand-class crossbar and the booster's EXTOLL torus —
// through a dedicated bridge.  BridgeFabric models that coupling as a
// constant-latency, per-source-serialised pipe, and it is the one fabric
// that may span *engine partitions* (sim::Engine::set_partitions):
// each endpoint is registered with its home partition (attach_in) and
// delivery is scheduled onto the destination's partition, so a partitioned
// engine can run each island's fabric in parallel while the bridge carries
// the cross-island traffic.  The bridge's latency is exactly the kind of
// physical lower bound the parallel engine needs: set the engine lookahead
// to (at most) the minimum bridge lookahead() and the conservative window
// protocol is sound (docs/parallel_engine.md).
//
// Thread-safety contract (only relevant when the engine is partitioned):
//  * attach/attach_in happen before the run (single-threaded setup);
//  * send() runs on the source endpoint's partition: the per-source tx
//    booking it mutates is keyed by source node, hence partition-confined;
//  * traffic statistics go to per-lane shards merged on read;
//  * delivery crosses partitions through Engine::schedule_on, the NIC is
//    touched only by its destination partition.
//
// Fault injection (set_link_up / set_drop_fn) is NOT supported on the
// bridge: the fault bookkeeping in the Fabric base is partition-agnostic
// shared state.  Inject faults on the island fabrics instead.

#include <vector>

#include "net/fabric.hpp"
#include "util/lane.hpp"

namespace deep::net {

struct BridgeParams {
  sim::Duration latency = sim::from_micros(2.0);  // NIC + bridge + NIC
  double bandwidth_bytes_per_sec = 8.0e9;         // per source direction
};

class BridgeFabric final : public Fabric {
 public:
  BridgeFabric(sim::Engine& engine, std::string name, BridgeParams params)
      : Fabric(engine, std::move(name)),
        params_(params),
        shards_(util::kMaxLanes) {
    DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
                "BridgeFabric: bandwidth must be positive");
    DEEP_EXPECT(params_.latency.ps > 0,
                "BridgeFabric: latency must be positive (it bounds the "
                "parallel engine's lookahead)");
  }

  const BridgeParams& params() const { return params_; }

  /// Every message pays at least the constant bridge latency.
  sim::Duration lookahead() const override { return params_.latency; }

  /// Attaches a node that lives on engine partition `p` (see
  /// sim::Engine::spawn_on).  Plain attach() places the node on partition 0.
  Nic& attach_in(hw::NodeId node, std::uint32_t p) {
    DEEP_EXPECT(p < engine_->partitions(),
                "BridgeFabric::attach_in: no such partition");
    Nic& nic = Fabric::attach(node);
    partition_of_[node] = p;
    tx_free_.try_emplace(node);  // pre-created: send() must not mutate the map
    return nic;
  }

  Nic& attach(hw::NodeId node) override { return attach_in(node, 0); }

  std::uint32_t partition_of(hw::NodeId node) const {
    auto it = partition_of_.find(node);
    DEEP_EXPECT(it != partition_of_.end(),
                "BridgeFabric::partition_of: node not attached");
    return it->second;
  }

  void send(Message msg, Service svc) override {
    DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
                "BridgeFabric::send: endpoint not attached");
    DEEP_EXPECT(msg.size_bytes >= 0, "BridgeFabric::send: negative size");
    const sim::TimePoint now = engine_->now();
    const sim::Duration wire = serialisation(msg.size_bytes);

    sim::TimePoint deliver;
    if (svc == Service::Control) {
      // Priority channel: latency only, no queueing behind bulk.
      deliver = now + params_.latency + wire;
    } else {
      sim::TimePoint& tx = tx_free_.at(msg.src);
      const sim::TimePoint tx_start = std::max(now, tx);
      tx = tx_start + wire;
      deliver = tx_start + wire + params_.latency;
    }

    // Book into this lane's shard + the (already per-lane) metric handles.
    FabricStats& shard = shards_[util::exec_lane()];
    shard.messages += 1;
    shard.bytes += msg.size_bytes;
    shard.delivery_us.add((deliver - now).micros());
    m_messages_.add(1);
    m_bytes_.add(msg.size_bytes);
    m_delivery_ns_.record((deliver - now).ps / 1000);
    if (auto* tracer = engine_->tracer()) {
      tracer->span(name_ + " wire",
                   std::to_string(msg.src) + "->" + std::to_string(msg.dst) +
                       " " + std::to_string(msg.size_bytes) + "B",
                   now, deliver, "net");
    }

    const std::uint32_t dst_part = partition_of(msg.dst);
    auto* nic = nics_.at(msg.dst).get();
    engine_->schedule_on(dst_part, deliver,
                         [nic, m = PooledMessage(std::move(msg))]() mutable {
                           nic->deliver(m.take());
                         });
  }

  /// Merged traffic statistics (shadowing the base accessor: the bridge
  /// books into per-lane shards, so the merged view is computed on read).
  FabricStats stats() const {
    FabricStats out;
    for (const FabricStats& shard : shards_) {
      out.messages += shard.messages;
      out.bytes += shard.bytes;
      out.messages_dropped += shard.messages_dropped;
      out.delivery_us.merge(shard.delivery_us);
    }
    return out;
  }

  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 private:
  BridgeParams params_;
  std::unordered_map<hw::NodeId, std::uint32_t> partition_of_;
  std::unordered_map<hw::NodeId, sim::TimePoint> tx_free_;
  std::vector<FabricStats> shards_;  // indexed by execution lane
};

}  // namespace deep::net

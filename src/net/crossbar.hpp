#pragma once
// CrossbarFabric: the InfiniBand-style cluster interconnect.
//
// Flat topology (slide 6): any node reaches any other through a central
// switching core modelled as a constant fabric latency.  Contention appears
// only at the endpoints: each NIC's injection (tx) and ejection (rx) links
// serialise at the fabric bandwidth.  The model is pipelined cut-through:
// a message occupies tx for size/bw, travels for `latency`, and occupies rx
// for size/bw; overlapping use of an endpoint link queues.

#include <unordered_map>

#include "net/fabric.hpp"
#include "net/pool.hpp"

namespace deep::net {

struct CrossbarParams {
  sim::Duration latency = sim::from_micros(1.5);  // adapter + switch + wire
  double bandwidth_bytes_per_sec = 6.0e9;         // FDR-class effective
};

class CrossbarFabric final : public Fabric {
 public:
  CrossbarFabric(sim::Engine& engine, std::string name, CrossbarParams params)
      : Fabric(engine, std::move(name)), params_(params) {
    DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
                "CrossbarFabric: bandwidth must be positive");
    if (auto* metrics = engine.metrics()) {
      m_link_busy_ps_ =
          metrics->counter("net." + this->name() + ".link_busy_ps");
      m_tx_wait_ns_ = metrics->histogram("net." + this->name() + ".tx_wait_ns");
    }
  }

  const CrossbarParams& params() const { return params_; }

  /// Every path pays at least the constant core latency (serialisation and
  /// queueing only add to it) — the bound holds per partition pair too, so
  /// the base per-pair lookahead (this for pairs with endpoints on both
  /// sides, unconstrained otherwise) is sound.
  sim::Duration lookahead() const override { return params_.latency; }

  /// Endpoint link slots are pre-created here so the partitioned send path
  /// never mutates the maps (rehash would race across workers).
  Nic& attach(hw::NodeId node) override {
    Nic& nic = Fabric::attach(node);
    tx_free_.try_emplace(node);
    rx_free_.try_emplace(node);
    return nic;
  }

  void send(Message msg, Service svc) override {
    DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
                "CrossbarFabric::send: endpoint not attached");
    DEEP_EXPECT(msg.size_bytes >= 0, "CrossbarFabric::send: negative size");
    if (faulted(msg)) return;
    const sim::TimePoint now = engine_->now();
    const sim::Duration wire = serialisation(msg.size_bytes);

    if (svc == Service::Control) {
      // Priority virtual channel: pure latency, no queueing behind bulk.
      // Analytic, so partitioning-independent; the base deliver_at handles
      // a cross-partition destination.
      deliver_at(now + params_.latency + wire, std::move(msg));
      return;
    }

    // Injection booking is owned by the source endpoint's partition (send()
    // executes there — every caller injects from its own node).
    sim::TimePoint& tx = tx_free_.at(msg.src);
    const sim::TimePoint tx_start = std::max(now, tx);
    const sim::TimePoint tx_end = tx_start + wire;
    tx = tx_end;
    // Endpoint-link occupancy (tx + rx) and injection queueing delay.
    m_link_busy_ps_.add(wire.ps * 2);
    m_tx_wait_ns_.record((tx_start - now).ps / 1000);

    const sim::TimePoint nominal = tx_end + params_.latency;
    if (partitioned()) {
      const std::uint32_t dst_part = partition_of(msg.dst);
      if (dst_part != partition_of(msg.src)) {
        // Ejection booking belongs to the destination's partition: continue
        // there at the nominal arrival (>= now + latency, i.e. at or beyond
        // the pair lookahead, so the hop is always inside the safe window).
        engine_->schedule_on(
            dst_part, nominal,
            [this, wire, m = PooledMessage(std::move(msg))]() mutable {
              Message msg = m.take();
              sim::TimePoint& rx = rx_free_.at(msg.dst);
              const sim::TimePoint deliver =
                  std::max(engine_->now(), rx + wire);
              rx = deliver;
              deliver_at(deliver, std::move(msg));
            });
        return;
      }
    }
    sim::TimePoint& rx = rx_free_.at(msg.dst);
    const sim::TimePoint deliver = std::max(nominal, rx + wire);
    rx = deliver;

    deliver_at(deliver, std::move(msg));
  }

  /// Time the wire is occupied by `bytes` (zero for zero-byte messages).
  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 private:
  CrossbarParams params_;
  std::unordered_map<hw::NodeId, sim::TimePoint> tx_free_;
  std::unordered_map<hw::NodeId, sim::TimePoint> rx_free_;
  obs::Counter m_link_busy_ps_;
  obs::Histogram m_tx_wait_ns_;
};

}  // namespace deep::net

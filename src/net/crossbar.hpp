#pragma once
// CrossbarFabric: the InfiniBand-style cluster interconnect.
//
// Flat topology (slide 6): any node reaches any other through a central
// switching core modelled as a constant fabric latency.  Contention appears
// only at the endpoints: each NIC's injection (tx) and ejection (rx) links
// serialise at the fabric bandwidth.  The model is pipelined cut-through:
// a message occupies tx for size/bw, travels for `latency`, and occupies rx
// for size/bw; overlapping use of an endpoint link queues.

#include <unordered_map>

#include "net/fabric.hpp"

namespace deep::net {

struct CrossbarParams {
  sim::Duration latency = sim::from_micros(1.5);  // adapter + switch + wire
  double bandwidth_bytes_per_sec = 6.0e9;         // FDR-class effective
};

class CrossbarFabric final : public Fabric {
 public:
  CrossbarFabric(sim::Engine& engine, std::string name, CrossbarParams params)
      : Fabric(engine, std::move(name)), params_(params) {
    DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
                "CrossbarFabric: bandwidth must be positive");
    if (auto* metrics = engine.metrics()) {
      m_link_busy_ps_ =
          metrics->counter("net." + this->name() + ".link_busy_ps");
      m_tx_wait_ns_ = metrics->histogram("net." + this->name() + ".tx_wait_ns");
    }
  }

  const CrossbarParams& params() const { return params_; }

  /// Every path pays at least the constant core latency (serialisation and
  /// queueing only add to it).
  sim::Duration lookahead() const override { return params_.latency; }

  void send(Message msg, Service svc) override {
    DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
                "CrossbarFabric::send: endpoint not attached");
    DEEP_EXPECT(msg.size_bytes >= 0, "CrossbarFabric::send: negative size");
    if (faulted(msg)) return;
    const sim::TimePoint now = engine_->now();
    const sim::Duration wire = serialisation(msg.size_bytes);

    if (svc == Service::Control) {
      // Priority virtual channel: pure latency, no queueing behind bulk.
      deliver_at(now + params_.latency + wire, std::move(msg));
      return;
    }

    sim::TimePoint& tx = tx_free_[msg.src];
    const sim::TimePoint tx_start = std::max(now, tx);
    const sim::TimePoint tx_end = tx_start + wire;
    tx = tx_end;
    // Endpoint-link occupancy (tx + rx) and injection queueing delay.
    m_link_busy_ps_.add(wire.ps * 2);
    m_tx_wait_ns_.record((tx_start - now).ps / 1000);

    const sim::TimePoint nominal = tx_end + params_.latency;
    sim::TimePoint& rx = rx_free_[msg.dst];
    const sim::TimePoint deliver = std::max(nominal, rx + wire);
    rx = deliver;

    deliver_at(deliver, std::move(msg));
  }

  /// Time the wire is occupied by `bytes` (zero for zero-byte messages).
  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 private:
  CrossbarParams params_;
  std::unordered_map<hw::NodeId, sim::TimePoint> tx_free_;
  std::unordered_map<hw::NodeId, sim::TimePoint> rx_free_;
  obs::Counter m_link_busy_ps_;
  obs::Histogram m_tx_wait_ns_;
};

}  // namespace deep::net

#pragma once
// Per-node, per-fabric network interface: demultiplexes arriving messages to
// protocol handlers by port.
//
// Handlers run in event context (not inside a process); they must not block.
// Protocols that need to block (MPI ranks) enqueue into their own structures
// and wake the owning process.

#include <array>
#include <functional>

#include "net/message.hpp"
#include "util/error.hpp"

namespace deep::net {

class Nic {
 public:
  using Handler = std::function<void(Message&&)>;

  explicit Nic(hw::NodeId node) : node_(node) {}
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  hw::NodeId node() const { return node_; }

  /// Registers the protocol handler for `port`; one handler per port.
  void bind(Port port, Handler handler) {
    auto& slot = handlers_.at(index(port));
    DEEP_EXPECT(!slot, "Nic::bind: port already bound");
    slot = std::move(handler);
  }

  /// Replaces (or clears) the handler for `port`.
  void rebind(Port port, Handler handler) {
    handlers_.at(index(port)) = std::move(handler);
  }

  bool bound(Port port) const {
    return static_cast<bool>(handlers_.at(index(port)));
  }

  /// Called by the fabric at delivery time.
  void deliver(Message&& msg) {
    auto& handler = handlers_.at(index(msg.port));
    DEEP_EXPECT(static_cast<bool>(handler),
                "Nic::deliver: no handler bound for port");
    handler(std::move(msg));
  }

 private:
  static std::size_t index(Port port) {
    const auto i = static_cast<std::size_t>(port);
    DEEP_EXPECT(i < kMaxPorts, "Nic: port out of range");
    return i;
  }

  static constexpr std::size_t kMaxPorts = 16;
  hw::NodeId node_;
  std::array<Handler, kMaxPorts> handlers_{};
};

}  // namespace deep::net

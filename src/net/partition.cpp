#include "net/partition.hpp"

#include <algorithm>
#include <unordered_map>

#include "sim/partition.hpp"

namespace deep::net {

std::vector<std::pair<hw::NodeId, std::uint32_t>> auto_partition(
    Fabric& fabric, std::uint32_t parts, const AutoPartitionOptions& options) {
  DEEP_EXPECT(parts >= 1, "auto_partition: parts must be >= 1");

  std::vector<hw::NodeId> ids = fabric.attached_ids();
  std::vector<char> is_pinned(ids.size(), 0);
  std::unordered_map<hw::NodeId, std::size_t> index;
  index.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) index[ids[i]] = i;
  for (const hw::NodeId node : options.pinned) {
    auto it = index.find(node);
    DEEP_EXPECT(it != index.end(), "auto_partition: pinned node not attached");
    is_pinned[it->second] = 1;
  }

  // Compact the grown (non-pinned) nodes into graph vertices.
  std::vector<hw::NodeId> grown;
  std::vector<std::size_t> vertex_of(ids.size(), 0);
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (!is_pinned[i]) {
      vertex_of[i] = grown.size();
      grown.push_back(ids[i]);
    }
  DEEP_EXPECT(parts <= grown.size(),
              "auto_partition: more partitions than partitionable nodes");

  sim::PartitionGraph graph;
  graph.vertices = grown.size();
  for (const auto& [a, b] : fabric.topology_edges()) {
    const auto ia = index.find(a);
    const auto ib = index.find(b);
    if (ia == index.end() || ib == index.end()) continue;
    if (is_pinned[ia->second] || is_pinned[ib->second]) continue;
    graph.edges.emplace_back(vertex_of[ia->second], vertex_of[ib->second]);
  }

  const std::vector<std::uint32_t> block = sim::partition_graph(graph, parts);

  std::vector<std::pair<hw::NodeId, std::uint32_t>> assignment;
  assignment.reserve(ids.size());
  for (std::size_t v = 0; v < grown.size(); ++v)
    assignment.emplace_back(grown[v], options.first_partition + block[v]);
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (is_pinned[i]) assignment.emplace_back(ids[i], options.pin_to);
  std::sort(assignment.begin(), assignment.end());
  for (const auto& [node, p] : assignment) fabric.set_node_partition(node, p);
  return assignment;
}

void install_pair_lookahead(sim::Engine& engine,
                            const std::vector<const Fabric*>& fabrics) {
  const std::uint32_t nparts = engine.partitions();
  for (std::uint32_t p = 0; p < nparts; ++p)
    for (std::uint32_t q = 0; q < nparts; ++q) {
      if (p == q) continue;
      sim::Duration la = sim::kUnconstrainedLookahead;
      for (const Fabric* fabric : fabrics)
        la = std::min(la, fabric->lookahead(p, q),
                      [](sim::Duration a, sim::Duration b) { return a.ps < b.ps; });
      engine.set_lookahead(p, q, la);
    }
}

}  // namespace deep::net

#include "net/pool.hpp"

#include "net/message.hpp"

namespace deep::net {

// The pools are intentionally leaked (never-destroyed heap singletons):
// pooled Message slots hold Payloads, so tearing the pools down in static
// destruction order would have one pool's destructor call into the other's
// already-destroyed instance.  LeakSanitizer treats memory reachable from a
// static as "still reachable", not a leak.

BufferPool& BufferPool::instance() {
  static auto* pool = new BufferPool();
  return *pool;
}

detail::Buffer* BufferPool::acquire(std::size_t size) {
  detail::Buffer* buf;
  if (free_head_ != nullptr) {
    buf = free_head_;
    free_head_ = buf->next_free;
    buf->next_free = nullptr;
    --free_count_;
  } else {
    all_.push_back(std::make_unique<detail::Buffer>());
    buf = all_.back().get();
  }
  buf->bytes.resize(size);  // shrinking keeps capacity; growing is the only
                            // allocation a warm pool ever performs
  buf->refs = 1;
  return buf;
}

void BufferPool::release(detail::Buffer* buffer) {
  if (--buffer->refs > 0) return;
  buffer->next_free = free_head_;
  free_head_ = buffer;
  ++free_count_;
}

MessagePool& MessagePool::instance() {
  static auto* pool = new MessagePool();
  return *pool;
}

Message* MessagePool::acquire() {
  if (!free_.empty()) {
    Message* slot = free_.back();
    free_.pop_back();
    return slot;
  }
  all_.push_back(std::make_unique<Message>());
  return all_.back().get();
}

void MessagePool::release(Message* slot) {
  slot->header.emplace<std::monostate>();
  slot->payload.reset();  // return the buffer now, not at next reuse
  free_.push_back(slot);
}

PooledMessage::PooledMessage(Message&& msg)
    : slot_(MessagePool::instance().acquire()) {
  *slot_ = std::move(msg);
}

void PooledMessage::reset() {
  if (slot_ != nullptr) {
    MessagePool::instance().release(slot_);
    slot_ = nullptr;
  }
}

}  // namespace deep::net

#include "net/pool.hpp"

#include <array>

#include "net/message.hpp"
#include "util/lane.hpp"

namespace deep::net {

// The pools are intentionally leaked (never-destroyed heap singletons):
// pooled Message slots hold Payloads, so tearing the pools down in static
// destruction order would have one pool's destructor call into the other's
// already-destroyed instance.  LeakSanitizer treats memory reachable from a
// static as "still reachable", not a leak.
//
// One pool per (session, lane) shard.  The lane discipline (one thread
// drives a lane at a time — util/lane.hpp) makes each pool's free list
// effectively single-threaded within a session, and distinct sessions
// resolve to disjoint shards, so concurrent in-process simulations never
// share a free list (docs/service.md).  The CAS below only guards first-use
// creation so that even a caller violating the discipline cannot corrupt
// the slot table.

namespace {

template <typename PoolT>
PoolT& lane_pool() {
  static std::array<std::atomic<PoolT*>,
                    util::kMaxSessions * util::kMaxLanes>
      slots{};
  std::atomic<PoolT*>& slot = slots[util::pool_shard()];
  PoolT* pool = slot.load(std::memory_order_acquire);
  if (pool == nullptr) {
    auto* fresh = new PoolT();
    if (slot.compare_exchange_strong(pool, fresh, std::memory_order_acq_rel))
      return *fresh;
    delete fresh;  // lost a (contract-violating) race; use the winner
  }
  return *pool;
}

}  // namespace

BufferPool& BufferPool::instance() { return lane_pool<BufferPool>(); }

detail::Buffer* BufferPool::acquire(std::size_t size) {
  detail::Buffer* buf;
  if (free_head_ != nullptr) {
    buf = free_head_;
    free_head_ = buf->next_free;
    buf->next_free = nullptr;
    --free_count_;
  } else {
    all_.push_back(std::make_unique<detail::Buffer>());
    buf = all_.back().get();
  }
  buf->bytes.resize(size);  // shrinking keeps capacity; growing is the only
                            // allocation a warm pool ever performs
  buf->refs.store(1, std::memory_order_relaxed);
  return buf;
}

void BufferPool::release(detail::Buffer* buffer) {
  if (buffer->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Joins this lane's free list even if another lane's acquire() created the
  // node: nodes live forever, so pools may adopt each other's buffers.
  buffer->next_free = free_head_;
  free_head_ = buffer;
  ++free_count_;
}

MessagePool& MessagePool::instance() { return lane_pool<MessagePool>(); }

Message* MessagePool::acquire() {
  if (!free_.empty()) {
    Message* slot = free_.back();
    free_.pop_back();
    return slot;
  }
  all_.push_back(std::make_unique<Message>());
  return all_.back().get();
}

void MessagePool::release(Message* slot) {
  slot->header.emplace<std::monostate>();
  slot->payload.reset();  // return the buffer now, not at next reuse
  free_.push_back(slot);
}

PooledMessage::PooledMessage(Message&& msg)
    : slot_(MessagePool::instance().acquire()) {
  *slot_ = std::move(msg);
}

void PooledMessage::reset() {
  if (slot_ != nullptr) {
    MessagePool::instance().release(slot_);
    slot_ = nullptr;
  }
}

}  // namespace deep::net

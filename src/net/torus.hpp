#pragma once
// TorusFabric: the EXTOLL-style booster interconnect.
//
// Models the EXTOLL NIC features the paper lists (slide 16):
//   * 6 links forming a 3-D torus, dimension-ordered shortest-path routing,
//   * a VELO engine for latency-critical small messages (low injection
//     overhead; used by the MPI eager path),
//   * an RMA engine for bulk transfers (descriptor setup cost, full link
//     bandwidth; used by the MPI rendezvous path),
//   * link-level retransmission: packets are CRC-protected, a corrupted
//     packet is retransmitted on the affected link (latency penalty, no
//     data loss), with counters exposed for the RAS benches.
//
// Wormhole-style timing: the head flit pays a per-hop router latency and
// queues on busy links; every traversed link (including the injection and
// ejection links) is then held until the message tail passes.

#include <array>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "util/rng.hpp"

namespace deep::net {

/// Coordinates of a node on the 3-D torus.
struct TorusCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const TorusCoord&) const = default;
};

struct TorusParams {
  std::array<int, 3> dims{4, 4, 4};
  sim::Duration hop_latency = sim::from_nanos(60);
  sim::Duration velo_injection = sim::from_nanos(300);
  sim::Duration rma_setup = sim::from_micros(1.2);
  sim::Duration ejection = sim::from_nanos(300);
  double bandwidth_bytes_per_sec = 5.0e9;  // per link direction
  std::int64_t packet_bytes = 2048;        // retransmission granularity
  double packet_error_rate = 0.0;          // probability a packet needs resend
  std::uint64_t seed = 0x5EED;             // for error sampling
};

class TorusFabric final : public Fabric {
 public:
  TorusFabric(sim::Engine& engine, std::string name, TorusParams params);

  const TorusParams& params() const { return params_; }

  /// Attaches the node at the next free coordinate (lexicographic order).
  Nic& attach(hw::NodeId node) override;
  /// Attaches the node at an explicit coordinate.
  Nic& attach_at(hw::NodeId node, TorusCoord coord);

  TorusCoord coord_of(hw::NodeId node) const;
  /// Number of torus hops between two attached nodes (dimension-ordered).
  int hops(hw::NodeId src, hw::NodeId dst) const;
  /// Shortest-path hop count between two coordinates on this torus.
  int hops(TorusCoord a, TorusCoord b) const;

  void send(Message msg, Service svc) override;

  /// Total link-level retransmissions performed so far.
  std::int64_t retransmissions() const { return retransmissions_; }
  /// Messages that traversed at least one retransmitted packet.
  std::int64_t affected_messages() const { return affected_messages_; }

  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 protected:
  /// Walks the dimension-ordered route and fails if any hop between two
  /// attached nodes crosses a dead link (coordinates without an attached
  /// node cannot be named by set_link_up and are skipped).
  bool route_up(hw::NodeId src, hw::NodeId dst) const override;

 private:
  // Directed link identifier: source router coordinate + channel (dimension
  // + sign, injection, ejection, or engine pseudo-link).
  struct LinkKey {
    std::int64_t packed;
    bool operator==(const LinkKey&) const = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const {
      return std::hash<std::int64_t>()(k.packed);
    }
  };

  LinkKey inject_link(TorusCoord c) const { return pack(c, 6); }
  LinkKey eject_link(TorusCoord c) const { return pack(c, 7); }
  // The VELO/RMA engines serialise message setup per NIC: modelled as
  // pseudo-links occupied for the injection overhead of each message.
  LinkKey engine_link(TorusCoord c, Service svc) const {
    return pack(c, svc == Service::Bulk ? 9 : 8);
  }
  LinkKey dim_link(TorusCoord c, int dim, bool positive) const {
    return pack(c, dim * 2 + (positive ? 0 : 1));
  }
  LinkKey pack(TorusCoord c, int channel) const;

  int linear(TorusCoord c) const;
  /// Dimension-ordered route from `a` to `b`: the sequence of directed links.
  std::vector<LinkKey> route(TorusCoord a, TorusCoord b) const;
  /// Signed shortest displacement along `dim` from `from` to `to`.
  int displacement(int from, int to, int dim) const;

  sim::Duration retransmission_penalty(std::int64_t bytes, int nlinks);

  TorusParams params_;
  std::unordered_map<hw::NodeId, TorusCoord> coords_;
  std::unordered_map<int, hw::NodeId> by_linear_;
  std::unordered_map<LinkKey, sim::TimePoint, LinkKeyHash> link_free_;
  util::Rng rng_;
  std::int64_t retransmissions_ = 0;
  std::int64_t affected_messages_ = 0;
  int next_linear_ = 0;
};

}  // namespace deep::net

#pragma once
// TorusFabric: the EXTOLL-style booster interconnect.
//
// Models the EXTOLL NIC features the paper lists (slide 16):
//   * 6 links forming a 3-D torus, dimension-ordered shortest-path routing,
//   * a VELO engine for latency-critical small messages (low injection
//     overhead; used by the MPI eager path),
//   * an RMA engine for bulk transfers (descriptor setup cost, full link
//     bandwidth; used by the MPI rendezvous path),
//   * link-level retransmission: packets are CRC-protected, a corrupted
//     packet is retransmitted on the affected link (latency penalty, no
//     data loss), with counters exposed for the RAS benches.
//
// Wormhole-style timing: the head flit pays a per-hop router latency and
// queues on busy links; every traversed link (including the injection and
// ejection links) is then held until the message tail passes.
//
// Hot-path layout (docs/perf.md): geometry is fixed at construction, so all
// per-message state lives in flat arrays indexed by the linear coordinate —
// node_at_/coord_at_ for attachment, link_free_ for wormhole link booking —
// and dimension-ordered routes are memoised per (src,dst) pair into a shared
// link arena.  A steady-state send performs no hashing beyond one memo probe
// and allocates nothing.  Fault checks (route_up) still walk the route
// per-call against the *live* link-state table, so chaos semantics are
// unchanged by the memoisation.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "util/rng.hpp"

namespace deep::net {

/// Coordinates of a node on the 3-D torus.
struct TorusCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const TorusCoord&) const = default;
};

struct TorusParams {
  std::array<int, 3> dims{4, 4, 4};
  sim::Duration hop_latency = sim::from_nanos(60);
  sim::Duration velo_injection = sim::from_nanos(300);
  sim::Duration rma_setup = sim::from_micros(1.2);
  sim::Duration ejection = sim::from_nanos(300);
  double bandwidth_bytes_per_sec = 5.0e9;  // per link direction
  std::int64_t packet_bytes = 2048;        // retransmission granularity
  double packet_error_rate = 0.0;          // probability a packet needs resend
  std::uint64_t seed = 0x5EED;             // for error sampling
};

class TorusFabric final : public Fabric {
 public:
  TorusFabric(sim::Engine& engine, std::string name, TorusParams params);

  const TorusParams& params() const { return params_; }

  /// Cheapest possible delivery: the faster engine's setup overhead plus the
  /// two unavoidable hops (injection and ejection link traversal).  Queueing,
  /// route hops, serialisation and retransmission only add to this.
  sim::Duration lookahead() const override {
    return engine_min() + params_.hop_latency * 2;
  }

  /// Route-distance-derived pair lookahead: nothing injected on partition
  /// `src_part` reaches partition `dst_part` earlier than the engine setup
  /// minimum plus one hop per torus link separating the two partitions'
  /// coordinate blocks (plus the injection hop).  Partitions that own no
  /// torus coordinates are unconstrained.  See docs/parallel_engine.md for
  /// why the partitioned contention model (endpoint-segmented booking)
  /// preserves this bound.
  sim::Duration lookahead(std::uint32_t src_part,
                          std::uint32_t dst_part) const override;

  /// Attaches the node at the next free coordinate (lexicographic order).
  Nic& attach(hw::NodeId node) override;
  /// Attaches the node at an explicit coordinate.
  Nic& attach_at(hw::NodeId node, TorusCoord coord);

  TorusCoord coord_of(hw::NodeId node) const;
  /// Number of torus hops between two attached nodes (dimension-ordered).
  int hops(hw::NodeId src, hw::NodeId dst) const;
  /// Shortest-path hop count between two coordinates on this torus.
  int hops(TorusCoord a, TorusCoord b) const;

  void send(Message msg, Service svc) override;

  /// The linear coordinates the dimension-ordered route src->dst visits,
  /// endpoints included.  Introspection for the route-table equivalence
  /// tests; uses the same memoised table as send()/route_up().
  std::vector<int> route_linears(hw::NodeId src, hw::NodeId dst) const;

  /// Total link-level retransmissions performed so far (all lanes).
  std::int64_t retransmissions() const;
  /// Messages that traversed at least one retransmitted packet (all lanes).
  std::int64_t affected_messages() const;

  /// Torus adjacency between attached nodes (distance-1 coordinate pairs),
  /// the locality graph net::auto_partition() grows blocks from.
  std::vector<std::pair<hw::NodeId, hw::NodeId>> topology_edges()
      const override;

  /// The partition owning a coordinate: its attached node's partition, or
  /// the nearest attached coordinate's (ties to the lowest linear index).
  /// Exposed for the auto-partitioning tests.
  std::uint32_t coord_partition(TorusCoord c) const;

  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

  // Per-router channel map.  A directed link is identified by the index
  // `linear * kChannelsPerRouter + channel` into link_free_; pack() guards
  // that a channel can never alias the next router's channel 0.
  static constexpr int kChannelsPerRouter = 16;
  // Channels 0..5 are the torus dimension links: dim * 2 (+x/+y/+z) and
  // dim * 2 + 1 (-x/-y/-z).
  static constexpr int kChannelInject = 6;
  static constexpr int kChannelEject = 7;
  // The VELO/RMA engines serialise message setup per NIC: modelled as
  // pseudo-links occupied for the injection overhead of each message.
  static constexpr int kChannelVelo = 8;
  static constexpr int kChannelRma = 9;

  /// Directed-link index for (router, channel).  A channel outside
  /// [0, kChannelsPerRouter) would silently alias a neighbouring router's
  /// links, so it is rejected here.
  static std::int64_t packed_link_index(int lin, int channel) {
    DEEP_EXPECT(channel >= 0 && channel < kChannelsPerRouter,
                "TorusFabric: channel would alias another router's links");
    return static_cast<std::int64_t>(lin) * kChannelsPerRouter + channel;
  }

 protected:
  /// Walks the (memoised) dimension-ordered route and fails if any hop
  /// between two attached nodes crosses a dead link (coordinates without an
  /// attached node cannot be named by set_link_up and are skipped).  The
  /// link-state check itself is live — never cached.
  bool route_up(hw::NodeId src, hw::NodeId dst) const override;

  /// Partition assignments change coordinate ownership and the pair-distance
  /// matrix; recompute both lazily on the next query.
  void on_node_partition(hw::NodeId, std::uint32_t) override {
    partition_dirty_.store(true, std::memory_order_release);
  }

 private:
  /// One memoised route: `count` packed dimension-link indices starting at
  /// the lane's route_links[first].  Endpoint-only pairs (src == dst) have
  /// count 0.
  struct RouteEntry {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  /// Mutable send-path state, replicated per execution lane so partitioned
  /// runs never share it across workers.  Serial runs (and all existing
  /// traces) use lane 0 exclusively: lane 0 is seeded with params.seed, so
  /// single-partition behaviour is bit-identical to the pre-partitioned
  /// fabric.  Other lanes derive their error-sampling streams from the seed
  /// and the lane index — deterministic for a fixed partitioning, whatever
  /// the worker count.
  struct LaneState {
    // Route memo: key (src_lin << 32) | dst_lin -> entry into this lane's
    // link arena.  Routes depend only on the fixed geometry, so entries are
    // never invalidated (lanes redundantly rebuild, never disagree).
    std::unordered_map<std::uint64_t, RouteEntry> route_memo;
    std::vector<std::int64_t> route_links;  // arena of packed links
    util::Rng rng{0};
    std::int64_t retransmissions = 0;
    std::int64_t affected_messages = 0;
  };

  LaneState& lane_state() const { return lanes_[util::exec_lane()]; }

  int linear(TorusCoord c) const;
  int linear_of(hw::NodeId node) const;
  /// Directed-link index into link_free_ (also the arena representation).
  std::int64_t pack(int lin, int channel) const {
    return packed_link_index(lin, channel);
  }
  std::int64_t dim_link(int lin, int dim, bool positive) const {
    return pack(lin, dim * 2 + (positive ? 0 : 1));
  }

  sim::Duration engine_min() const {
    return params_.velo_injection < params_.rma_setup ? params_.velo_injection
                                                      : params_.rma_setup;
  }

  /// The memoised dimension-ordered route src->dst (built on first use,
  /// per execution lane).
  const RouteEntry& route_entry(int src_lin, int dst_lin) const;

  /// Signed shortest displacement along `dim` from `from` to `to`.
  int displacement(int from, int to, int dim) const;

  sim::Duration retransmission_penalty(std::int64_t bytes, int nlinks);

  /// Rebuilds coord_part_ (coordinate -> owning partition) and pair_hops_
  /// (partition-pair min hop distance) from the current node partitions.
  void refresh_partitions() const;
  /// refresh_partitions() if dirty, serialised for the (setup-time) case of
  /// a first query racing across lanes.
  void ensure_partitions() const;
  std::uint32_t coord_owner(int lin) const {
    return coord_part_.empty() ? 0 : coord_part_[lin];
  }

  /// Destination-side continuation of a cross-partition send: books the
  /// destination-owned route suffix and the ejection link, then delivers.
  /// Runs as an event on the destination partition at the analytic head
  /// arrival time.
  void deliver_cross(Message msg, int src_lin, int dst_lin,
                     std::uint32_t suffix_off);

  TorusParams params_;
  int capacity_ = 0;
  std::vector<TorusCoord> coord_at_;   // linear -> coordinate (fixed)
  std::vector<hw::NodeId> node_at_;    // linear -> node (kInvalidNode if free)
  std::unordered_map<hw::NodeId, int> linear_of_;  // node -> linear
  // Directed-link busy-until times.  Shared across partitions, but each
  // entry is written only by the partition owning its router's coordinate
  // (endpoint-segmented booking), so partitioned access is race-free.
  std::vector<sim::TimePoint> link_free_;
  // Per-execution-lane send state (deque: stable addresses, no moves).
  mutable std::deque<LaneState> lanes_;
  // Partition geometry, rebuilt by refresh_partitions() when dirty.
  mutable std::vector<std::uint32_t> coord_part_;  // linear -> owner partition
  mutable std::vector<std::int64_t> pair_hops_;    // P*P min hops, -1 = none
  mutable std::atomic<bool> partition_dirty_{false};
  mutable std::mutex partition_mu_;
  int next_linear_ = 0;
  // Metrics (null handles when no registry; see Fabric).
  obs::Counter m_hops_;             // torus dimension hops traversed
  obs::Counter m_retransmissions_;  // link-level packet resends
  obs::Counter m_link_busy_ps_;     // serialisation occupancy, summed per link
  obs::Histogram m_head_wait_ns_;   // injection->head-at-destination latency
};

}  // namespace deep::net

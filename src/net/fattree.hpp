#pragma once
// FatTreeFabric: a two-level fat-tree, the realistic construction of the
// cluster's InfiniBand network.
//
// Nodes attach to leaf switches (`leaf_radix` nodes per leaf); every leaf
// has `uplinks` links to the spine.  With uplinks == leaf_radix the tree is
// non-blocking and behaves like the idealised crossbar; smaller uplink
// counts model the oversubscribed (cheaper) fabrics real clusters deploy,
// where cross-leaf traffic contends on the uplinks.
//
// Routing is ECMP-style: the uplink (and the matching spine->leaf downlink)
// is chosen by a deterministic hash of (src, dst), as real IB subnet
// managers do with static routing.  Wormhole timing like the torus: the
// head pays per-switch latency and queues on busy links; every traversed
// link is reserved until the tail passes.

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"

namespace deep::net {

/// Spine-plane selection for cross-leaf traffic.
enum class FatTreeRouting {
  Ecmp,      // static hash of (src, dst), as IB subnet managers route
  Adaptive,  // least-loaded plane by simulated trunk-busy state; replays
             // stay bit-identical (the choice keys only on link_free_)
};

struct FatTreeParams {
  int leaf_radix = 8;  // nodes per leaf switch
  int uplinks = 8;     // leaf->spine links (== leaf_radix: non-blocking)
  sim::Duration adapter_latency = sim::from_nanos(400);  // NIC each end
  sim::Duration switch_latency = sim::from_nanos(200);   // per switch hop
  double bandwidth_bytes_per_sec = 6.0e9;
  FatTreeRouting routing = FatTreeRouting::Ecmp;
};

class FatTreeFabric final : public Fabric {
 public:
  FatTreeFabric(sim::Engine& engine, std::string name, FatTreeParams params);

  const FatTreeParams& params() const { return params_; }

  Nic& attach(hw::NodeId node) override;
  void send(Message msg, Service svc) override;

  int leaf_of(hw::NodeId node) const;
  /// Switch hops between two attached nodes (1 same leaf, 3 cross leaf).
  int hops(hw::NodeId src, hw::NodeId dst) const;

  /// Cheapest event a fat-tree send can place on another partition: one
  /// adapter plus a single switch hop (the same-leaf case).
  sim::Duration lookahead() const override {
    return params_.adapter_latency + params_.switch_latency;
  }

  /// Leaf-distance pair lookahead: one switch when the two partitions share
  /// a leaf switch, the full three-switch spine crossing otherwise.
  sim::Duration lookahead(std::uint32_t src_part,
                          std::uint32_t dst_part) const override;

  /// Same-leaf adjacency between attached nodes — the locality graph
  /// net::auto_partition() grows blocks from.
  std::vector<std::pair<hw::NodeId, hw::NodeId>> topology_edges()
      const override;

  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 protected:
  void on_node_partition(hw::NodeId, std::uint32_t) override {
    partition_dirty_.store(true, std::memory_order_release);
  }

 private:
  // Link identifiers.  Node links are keyed by node id; leaf<->spine links
  // by (leaf, uplink index, direction).
  enum class Dir : std::uint8_t { Up, Down };
  std::int64_t node_tx(hw::NodeId n) const { return n * 4; }
  std::int64_t node_rx(hw::NodeId n) const { return n * 4 + 1; }
  std::int64_t trunk(int leaf, int uplink, Dir dir) const {
    return -(((static_cast<std::int64_t>(leaf) * params_.uplinks + uplink) << 1 |
              static_cast<std::int64_t>(dir)) +
             1);
  }

  /// Rebuilds per-leaf partition ownership and the pair min-switch table
  /// when node partitions changed.
  void ensure_partitions() const;
  void refresh_partitions() const;

  /// The partition owning every node of `leaf`, or kMixedLeaf if the leaf
  /// hosts nodes from several partitions (its trunks are then analytic —
  /// never booked — in partitioned runs).
  static constexpr std::uint32_t kMixedLeaf = 0xFFFFFFFFu;

  FatTreeParams params_;
  std::unordered_map<hw::NodeId, int> leaves_;
  // Link booking.  Entries are pre-created at attach so the partitioned
  // send path never rehashes; each entry is only ever touched by the
  // partition owning it (node links by the endpoint's partition, trunks by
  // their leaf's uniform owner).
  std::unordered_map<std::int64_t, sim::TimePoint> link_free_;
  int attached_count_ = 0;
  // Partition geometry (lazy, guarded like TorusFabric's).
  mutable std::vector<std::uint32_t> leaf_part_;     // leaf -> owner/kMixedLeaf
  mutable std::vector<char> pair_share_leaf_;        // P*P co-located flags
  mutable std::vector<char> part_present_;           // partition has nodes
  mutable std::atomic<bool> partition_dirty_{false};
  mutable std::mutex partition_mu_;
};

}  // namespace deep::net

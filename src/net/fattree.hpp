#pragma once
// FatTreeFabric: a two-level fat-tree, the realistic construction of the
// cluster's InfiniBand network.
//
// Nodes attach to leaf switches (`leaf_radix` nodes per leaf); every leaf
// has `uplinks` links to the spine.  With uplinks == leaf_radix the tree is
// non-blocking and behaves like the idealised crossbar; smaller uplink
// counts model the oversubscribed (cheaper) fabrics real clusters deploy,
// where cross-leaf traffic contends on the uplinks.
//
// Routing is ECMP-style: the uplink (and the matching spine->leaf downlink)
// is chosen by a deterministic hash of (src, dst), as real IB subnet
// managers do with static routing.  Wormhole timing like the torus: the
// head pays per-switch latency and queues on busy links; every traversed
// link is reserved until the tail passes.

#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"

namespace deep::net {

struct FatTreeParams {
  int leaf_radix = 8;  // nodes per leaf switch
  int uplinks = 8;     // leaf->spine links (== leaf_radix: non-blocking)
  sim::Duration adapter_latency = sim::from_nanos(400);  // NIC each end
  sim::Duration switch_latency = sim::from_nanos(200);   // per switch hop
  double bandwidth_bytes_per_sec = 6.0e9;
};

class FatTreeFabric final : public Fabric {
 public:
  FatTreeFabric(sim::Engine& engine, std::string name, FatTreeParams params);

  const FatTreeParams& params() const { return params_; }

  Nic& attach(hw::NodeId node) override;
  void send(Message msg, Service svc) override;

  int leaf_of(hw::NodeId node) const;
  /// Switch hops between two attached nodes (1 same leaf, 3 cross leaf).
  int hops(hw::NodeId src, hw::NodeId dst) const;

  sim::Duration serialisation(std::int64_t bytes) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             params_.bandwidth_bytes_per_sec);
  }

 private:
  // Link identifiers.  Node links are keyed by node id; leaf<->spine links
  // by (leaf, uplink index, direction).
  enum class Dir : std::uint8_t { Up, Down };
  std::int64_t node_tx(hw::NodeId n) const { return n * 4; }
  std::int64_t node_rx(hw::NodeId n) const { return n * 4 + 1; }
  std::int64_t trunk(int leaf, int uplink, Dir dir) const {
    return -(((static_cast<std::int64_t>(leaf) * params_.uplinks + uplink) << 1 |
              static_cast<std::int64_t>(dir)) +
             1);
  }

  FatTreeParams params_;
  std::unordered_map<hw::NodeId, int> leaves_;
  std::unordered_map<std::int64_t, sim::TimePoint> link_free_;
  int attached_count_ = 0;
};

}  // namespace deep::net

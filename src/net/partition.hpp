#pragma once
// Topology-driven auto-partitioning: the fabric-facing half.
//
// auto_partition() reads a fabric's locality graph (Fabric::topology_edges)
// and splits its attached nodes into balanced blocks with
// sim::partition_graph, then applies the assignment via
// Fabric::set_node_partition.  Gateways (or any node that must stay with
// the control plane) are pinned instead of grown.
//
// install_pair_lookahead() derives the engine's per-(src,dst) lookahead
// matrix from the fabrics that actually carry cross-partition traffic: for
// each pair it takes the minimum of every fabric's route-distance bound
// (Fabric::lookahead(p, q)), with pairs no fabric connects left
// unconstrained.  Together the two calls are everything `deepsim
// --partitions auto` needs (docs/parallel_engine.md).

#include <cstdint>
#include <utility>
#include <vector>

#include "net/fabric.hpp"

namespace deep::net {

struct AutoPartitionOptions {
  /// Engine partition of the first grown block; blocks occupy
  /// [first_partition, first_partition + parts).
  std::uint32_t first_partition = 0;
  /// Nodes excluded from block growth and assigned to `pin_to` instead
  /// (e.g. gateway nodes that belong with the cluster-side control plane).
  std::vector<hw::NodeId> pinned;
  std::uint32_t pin_to = 0;
};

/// Splits `fabric`'s attached nodes (minus pinned ones) into `parts`
/// balanced topology-driven blocks and applies the assignment to the
/// fabric.  Returns the (node, partition) assignment actually applied,
/// pinned nodes included — deterministic for a fixed fabric and options.
std::vector<std::pair<hw::NodeId, std::uint32_t>> auto_partition(
    Fabric& fabric, std::uint32_t parts, const AutoPartitionOptions& options = {});

/// Fills the engine's per-pair lookahead matrix: for every ordered partition
/// pair the minimum over `fabrics` of that fabric's route-distance lookahead
/// bound.  Call after all partitions are assigned, before Engine::run.
void install_pair_lookahead(sim::Engine& engine,
                            const std::vector<const Fabric*>& fabrics);

}  // namespace deep::net

#include "net/dragonfly.hpp"

#include <algorithm>

#include "net/pool.hpp"

namespace deep::net {

DragonflyFabric::DragonflyFabric(sim::Engine& engine, std::string name,
                                 DragonflyParams params)
    : Fabric(engine, std::move(name)),
      params_(params),
      valiant_lane_(util::kMaxLanes, 0) {
  DEEP_EXPECT(params_.groups >= 2, "DragonflyFabric: need at least 2 groups");
  DEEP_EXPECT(params_.routers_per_group >= 1,
              "DragonflyFabric: routers_per_group must be >= 1");
  DEEP_EXPECT(params_.nodes_per_router >= 1,
              "DragonflyFabric: nodes_per_router must be >= 1");
  DEEP_EXPECT(params_.local_bandwidth_bytes_per_sec > 0 &&
                  params_.global_bandwidth_bytes_per_sec > 0,
              "DragonflyFabric: bandwidth must be positive");
  total_routers_ = params_.groups * params_.routers_per_group;
  capacity_ = total_routers_ * params_.nodes_per_router;
  router_rep_.assign(static_cast<std::size_t>(total_routers_),
                     hw::kInvalidNode);
  // Pre-create every router-level link slot: the send path must never grow
  // the map (a rehash would race across partitioned workers).
  for (int g = 0; g < params_.groups; ++g) {
    const int base = g * params_.routers_per_group;
    for (int r1 = 0; r1 < params_.routers_per_group; ++r1)
      for (int r2 = 0; r2 < params_.routers_per_group; ++r2)
        if (r1 != r2) link_free_.try_emplace(local_link(base + r1, base + r2));
  }
  for (int g1 = 0; g1 < params_.groups; ++g1)
    for (int g2 = 0; g2 < params_.groups; ++g2)
      if (g1 != g2) link_free_.try_emplace(global_link(g1, g2));
  if (auto* metrics = engine_->metrics()) {
    m_global_hops_ = metrics->counter("net." + name_ + ".global_hops");
    m_valiant_ = metrics->counter("net." + name_ + ".valiant_detours");
  }
}

Nic& DragonflyFabric::attach(hw::NodeId node) {
  DEEP_EXPECT(attached_count_ < capacity_,
              "DragonflyFabric: fabric is full (groups * routers_per_group * "
              "nodes_per_router nodes)");
  Nic& nic = Fabric::attach(node);
  const int router = attached_count_++ / params_.nodes_per_router;
  routers_[node] = router;
  auto& rep = router_rep_[static_cast<std::size_t>(router)];
  if (rep == hw::kInvalidNode || node < rep) rep = node;
  link_free_.try_emplace(node_tx(node));
  link_free_.try_emplace(node_rx(node));
  partition_dirty_.store(true, std::memory_order_release);
  return nic;
}

int DragonflyFabric::router_of(hw::NodeId node) const {
  auto it = routers_.find(node);
  DEEP_EXPECT(it != routers_.end(), "DragonflyFabric: node not attached");
  return it->second;
}

hw::NodeId DragonflyFabric::representative(int router) const {
  DEEP_EXPECT(router >= 0 && router < total_routers_,
              "DragonflyFabric: router index out of range");
  const hw::NodeId rep = router_rep_[static_cast<std::size_t>(router)];
  DEEP_EXPECT(rep != hw::kInvalidNode,
              "DragonflyFabric: router has no attached nodes");
  return rep;
}

int DragonflyFabric::global_host(int group, int other) const {
  DEEP_EXPECT(group != other && group >= 0 && group < params_.groups &&
                  other >= 0 && other < params_.groups,
              "DragonflyFabric: bad group pair");
  // Canonical consecutive assignment: group g's global links (one per other
  // group, in group order) round-robin over its routers.
  const int k = other < group ? other : other - 1;
  return k % params_.routers_per_group;
}

std::int64_t DragonflyFabric::valiant_detours() const {
  std::int64_t total = 0;
  for (const std::int64_t v : valiant_lane_) total += v;
  return total;
}

// ---------------------------------------------------------------------------
// Path construction and selection
// ---------------------------------------------------------------------------

DragonflyFabric::Path DragonflyFabric::minimal_path(int src_router,
                                                    int dst_router) const {
  Path path;
  if (src_router == dst_router) return path;
  const int a = params_.routers_per_group;
  const int gs = src_router / a, gd = dst_router / a;
  if (gs == gd) {
    path.add(src_router, dst_router, false);
    return path;
  }
  const int hs = gs * a + global_host(gs, gd);
  const int hd = gd * a + global_host(gd, gs);
  if (src_router != hs) path.add(src_router, hs, false);
  path.add(hs, hd, true);
  if (hd != dst_router) path.add(hd, dst_router, false);
  return path;
}

DragonflyFabric::Path DragonflyFabric::valiant_path(int src_router,
                                                    int dst_router,
                                                    int via) const {
  const int a = params_.routers_per_group;
  const int gs = src_router / a, gd = dst_router / a;
  DEEP_ASSERT(via != gs && via != gd && gs != gd,
              "DragonflyFabric: bad Valiant intermediate group");
  Path path;
  path.valiant = true;
  // Leg 1: source group to the intermediate group's entry router.
  const int hs = gs * a + global_host(gs, via);
  const int entry = via * a + global_host(via, gs);
  if (src_router != hs) path.add(src_router, hs, false);
  path.add(hs, entry, true);
  // Leg 2: intermediate group to the destination.
  const int exit = via * a + global_host(via, gd);
  const int hd = gd * a + global_host(gd, via);
  if (entry != exit) path.add(entry, exit, false);
  path.add(exit, hd, true);
  if (hd != dst_router) path.add(hd, dst_router, false);
  return path;
}

int DragonflyFabric::valiant_group(int src_group, int dst_group) const {
  // Deterministic rotation: a pure function of the group pair, so the same
  // (src, dst) always detours through the same group.
  for (int i = 0; i < params_.groups; ++i) {
    const int via = (src_group + dst_group + i) % params_.groups;
    if (via != src_group && via != dst_group) return via;
  }
  DEEP_ASSERT(false, "DragonflyFabric: no intermediate group (groups < 3)");
  return -1;
}

bool DragonflyFabric::path_alive(const Path& path) const {
  for (int i = 0; i < path.nhops; ++i) {
    const Path::Hop& hop = path.hops[static_cast<std::size_t>(i)];
    if (!link_up(representative(hop.from), representative(hop.to)))
      return false;
  }
  return true;
}

bool DragonflyFabric::alive_path(int src_router, int dst_router,
                                 Path& out) const {
  Path minimal = minimal_path(src_router, dst_router);
  if (path_alive(minimal)) {
    out = minimal;
    return true;
  }
  const int a = params_.routers_per_group;
  const int gs = src_router / a, gd = dst_router / a;
  if (gs != gd) {
    // Valiant candidates in the deterministic rotation order.
    for (int i = 0; i < params_.groups; ++i) {
      const int via = (gs + gd + i) % params_.groups;
      if (via == gs || via == gd) continue;
      Path candidate = valiant_path(src_router, dst_router, via);
      if (path_alive(candidate)) {
        out = candidate;
        return true;
      }
    }
    return false;
  }
  // Same group: detour over a third router (local links are all-to-all).
  for (int i = 0; i < a; ++i) {
    const int via = gs * a + (src_router + dst_router + i) % a;
    if (via == src_router || via == dst_router) continue;
    Path candidate;
    candidate.valiant = true;
    candidate.add(src_router, via, false);
    candidate.add(via, dst_router, false);
    if (path_alive(candidate)) {
      out = candidate;
      return true;
    }
  }
  return false;
}

bool DragonflyFabric::route_up(hw::NodeId src, hw::NodeId dst) const {
  Path unused;
  return alive_path(router_of(src), router_of(dst), unused);
}

sim::Duration DragonflyFabric::queue_estimate(std::int64_t link) const {
  const auto it = link_free_.find(link);
  if (it == link_free_.end()) return sim::Duration{0};
  const sim::TimePoint now = engine_->now();
  return it->second > now ? it->second - now : sim::Duration{0};
}

DragonflyFabric::Path DragonflyFabric::choose_path(int src_router,
                                                   int dst_router) const {
  const int a = params_.routers_per_group;
  const int gs = src_router / a, gd = dst_router / a;
  Path path = minimal_path(src_router, dst_router);
  if (gs != gd && !partitioned()) {
    if (params_.routing == DragonflyRouting::Valiant) {
      path = valiant_path(src_router, dst_router, valiant_group(gs, gd));
    } else if (params_.routing == DragonflyRouting::Adaptive) {
      // UGAL: estimated queueing on the minimal global link vs the best
      // detour's two global links plus the extra cable.  Every input is
      // simulated link state, so the choice replays bit-identically.
      const sim::Duration direct = queue_estimate(global_link(gs, gd));
      sim::Duration best_cost = sim::kUnconstrainedLookahead;
      int best_via = -1;
      for (int via = 0; via < params_.groups; ++via) {
        if (via == gs || via == gd) continue;
        const sim::Duration cost = queue_estimate(global_link(gs, via)) +
                                   queue_estimate(global_link(via, gd)) +
                                   params_.global_latency;
        if (cost < best_cost) {
          best_cost = cost;
          best_via = via;
        }
      }
      if (best_via >= 0 && best_cost + params_.adaptive_bias < direct)
        path = valiant_path(src_router, dst_router, best_via);
    }
  }
  // Fault fallback, in every routing mode: when the chosen path crosses a
  // dead link, take the canonical alive candidate instead.  faulted() has
  // already established one exists.
  if (links_down() > 0 && !path_alive(path)) {
    const bool found = alive_path(src_router, dst_router, path);
    DEEP_ASSERT(found, "DragonflyFabric: send passed faulted() with no path");
  }
  return path;
}

// ---------------------------------------------------------------------------
// Topology introspection and partition geometry
// ---------------------------------------------------------------------------

int DragonflyFabric::hops(hw::NodeId src, hw::NodeId dst) const {
  return minimal_path(router_of(src), router_of(dst)).routers();
}

std::vector<std::pair<hw::NodeId, hw::NodeId>> DragonflyFabric::topology_edges()
    const {
  std::vector<std::pair<hw::NodeId, int>> nodes(routers_.begin(),
                                                routers_.end());
  std::sort(nodes.begin(), nodes.end());
  std::vector<std::pair<hw::NodeId, hw::NodeId>> edges;
  // Same-router pairs: the tightest locality.
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      if (nodes[i].second == nodes[j].second)
        edges.emplace_back(nodes[i].first, nodes[j].first);
  // Intra-group router chain + global-link host adjacency, over the
  // representative nodes, so the graph is connected and the global links
  // form the natural cut for auto_partition.
  const int a = params_.routers_per_group;
  for (int g = 0; g < params_.groups; ++g) {
    hw::NodeId prev = hw::kInvalidNode;
    for (int r = 0; r < a; ++r) {
      const hw::NodeId rep = router_rep_[static_cast<std::size_t>(g * a + r)];
      if (rep == hw::kInvalidNode) continue;
      if (prev != hw::kInvalidNode) edges.emplace_back(prev, rep);
      prev = rep;
    }
  }
  for (int g1 = 0; g1 < params_.groups; ++g1)
    for (int g2 = g1 + 1; g2 < params_.groups; ++g2) {
      const hw::NodeId rep1 =
          router_rep_[static_cast<std::size_t>(g1 * a + global_host(g1, g2))];
      const hw::NodeId rep2 =
          router_rep_[static_cast<std::size_t>(g2 * a + global_host(g2, g1))];
      if (rep1 != hw::kInvalidNode && rep2 != hw::kInvalidNode)
        edges.emplace_back(rep1, rep2);
    }
  return edges;
}

int DragonflyFabric::router_pair_hops(int r1, int r2) const {
  return minimal_path(r1, r2).routers();
}

void DragonflyFabric::refresh_partitions() const {
  const std::uint32_t nparts = engine_->partitions();
  part_present_.assign(nparts, 0);
  pair_hops_.assign(static_cast<std::size_t>(nparts) * nparts, -1);
  // Routers present per partition (small: total_routers_ entries).
  std::vector<std::vector<std::uint32_t>> router_parts(
      static_cast<std::size_t>(total_routers_));
  for (const auto& [node, router] : routers_) {
    const std::uint32_t p = partition_of(node);
    if (p < nparts) part_present_[p] = 1;
    auto& list = router_parts[static_cast<std::size_t>(router)];
    if (std::find(list.begin(), list.end(), p) == list.end()) list.push_back(p);
  }
  for (int r1 = 0; r1 < total_routers_; ++r1) {
    if (router_parts[static_cast<std::size_t>(r1)].empty()) continue;
    for (int r2 = 0; r2 < total_routers_; ++r2) {
      if (router_parts[static_cast<std::size_t>(r2)].empty()) continue;
      const std::int64_t d = router_pair_hops(r1, r2);
      for (const std::uint32_t p : router_parts[static_cast<std::size_t>(r1)])
        for (const std::uint32_t q :
             router_parts[static_cast<std::size_t>(r2)]) {
          if (p >= nparts || q >= nparts) continue;
          std::int64_t& cell =
              pair_hops_[static_cast<std::size_t>(p) * nparts + q];
          if (cell < 0 || d < cell) cell = d;
        }
    }
  }
  partition_dirty_.store(false, std::memory_order_release);
}

void DragonflyFabric::ensure_partitions() const {
  if (!partition_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(partition_mu_);
  if (partition_dirty_.load(std::memory_order_relaxed)) refresh_partitions();
}

sim::Duration DragonflyFabric::lookahead(std::uint32_t src_part,
                                         std::uint32_t dst_part) const {
  if (!partitioned()) return Fabric::lookahead(src_part, dst_part);
  if (src_part == dst_part) return sim::kUnconstrainedLookahead;
  ensure_partitions();
  const std::uint32_t nparts = engine_->partitions();
  if (src_part >= nparts || dst_part >= nparts || !part_present_[src_part] ||
      !part_present_[dst_part])
    return sim::kUnconstrainedLookahead;
  const std::int64_t d =
      pair_hops_[static_cast<std::size_t>(src_part) * nparts + dst_part];
  if (d < 0) return sim::kUnconstrainedLookahead;
  return params_.adapter_latency + params_.router_latency * d;
}

// ---------------------------------------------------------------------------
// Send
// ---------------------------------------------------------------------------

void DragonflyFabric::send(Message msg, Service svc) {
  DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
              "DragonflyFabric::send: endpoint not attached");
  DEEP_EXPECT(msg.size_bytes >= 0, "DragonflyFabric::send: negative size");
  if (faulted(msg)) return;
  const int src_router = router_of(msg.src);
  const int dst_router = router_of(msg.dst);
  const Path path = choose_path(src_router, dst_router);
  if (path.valiant) {
    valiant_lane_[util::exec_lane()] += 1;
    m_valiant_.add(1);
  }
  m_global_hops_.add(path.globals);
  const sim::Duration wire = serialisation(msg.size_bytes, path.globals > 0);
  const sim::Duration latency = params_.adapter_latency +
                                params_.router_latency * path.routers() +
                                params_.global_latency * path.globals;

  if (svc == Service::Control) {
    // Priority virtual channel: latency only, never queued behind bulk.
    deliver_at(engine_->now() + latency + params_.adapter_latency + wire,
               std::move(msg));
    return;
  }

  if (!partitioned()) {
    // Serial path: wormhole-reserve every traversed link head to tail.
    sim::TimePoint head = engine_->now() + latency;
    head = std::max(head, link_free_.at(node_tx(msg.src)));
    for (int i = 0; i < path.nhops; ++i)
      head = std::max(
          head,
          link_free_.at(hop_link(path.hops[static_cast<std::size_t>(i)])));
    head = std::max(head, link_free_.at(node_rx(msg.dst)));
    const sim::TimePoint tail = head + wire;
    link_free_.at(node_tx(msg.src)) = tail;
    for (int i = 0; i < path.nhops; ++i)
      link_free_.at(hop_link(path.hops[static_cast<std::size_t>(i)])) = tail;
    link_free_.at(node_rx(msg.dst)) = tail;
    deliver_at(tail + params_.adapter_latency, std::move(msg));
    return;
  }

  // Partitioned: endpoint-segmented booking.  Node links belong to their
  // endpoint's partition; router and global links are analytic (choose_path
  // already degraded to minimal routing, which reads no shared link state).
  ensure_partitions();
  const std::uint32_t src_part = partition_of(msg.src);
  const std::uint32_t dst_part = partition_of(msg.dst);
  sim::TimePoint head = engine_->now() + latency;
  head = std::max(head, link_free_.at(node_tx(msg.src)));

  if (src_part == dst_part) {
    head = std::max(head, link_free_.at(node_rx(msg.dst)));
    const sim::TimePoint tail = head + wire;
    link_free_.at(node_tx(msg.src)) = tail;
    link_free_.at(node_rx(msg.dst)) = tail;
    deliver_at(tail + params_.adapter_latency, std::move(msg));
    return;
  }

  // Cross partition: book the source side until its local tail, continue on
  // the destination partition.  `head` >= now + adapter + router_latency *
  // minimal routers, which is at or beyond the pair lookahead bound.
  const sim::TimePoint src_tail = head + wire;
  link_free_.at(node_tx(msg.src)) = src_tail;
  engine_->schedule_on(
      dst_part, head, [this, wire, m = PooledMessage(std::move(msg))]() mutable {
        Message msg = m.take();
        sim::TimePoint head = engine_->now();
        head = std::max(head, link_free_.at(node_rx(msg.dst)));
        const sim::TimePoint tail = head + wire;
        link_free_.at(node_rx(msg.dst)) = tail;
        deliver_at(tail + params_.adapter_latency, std::move(msg));
      });
}

}  // namespace deep::net

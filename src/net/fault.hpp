#pragma once
// Fault injection: seeded, schedule- and probability-driven hardware faults.
//
// A FaultSpec describes what goes wrong (dead links, failed gateways, a
// per-message drop probability) and when; a FaultPlan turns the spec into
// engine events against one or more fabrics and — through an opaque control
// hook — the CBP gateway layer.  Everything is driven by virtual time and a
// single util::Rng seeded from the spec, so a given (workload, spec) pair
// replays bit-identically: the chaos tests assert byte-equal traces.
//
// Pay-for-what-you-use: a spec with zero probability and empty schedules
// installs nothing at all — the instrumented layers behave exactly as if no
// FaultPlan existed (asserted by a property test).

#include <cstdint>
#include <functional>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace deep::net {

/// Scheduled change of one link's administrative state.
struct LinkEvent {
  sim::TimePoint at;
  hw::NodeId a = hw::kInvalidNode;
  hw::NodeId b = hw::kInvalidNode;
  bool up = false;  // false: kill the link at `at`; true: heal it
};

/// Scheduled change of one gateway's state (applied via the control hook).
struct GatewayEvent {
  sim::TimePoint at;
  hw::NodeId gateway = hw::kInvalidNode;
  bool up = false;
};

/// Scheduled death (up=false) or repair (up=true) of a whole node.  A dead
/// node loses fabric access on every attached fabric (set_link_up(n, n)) and
/// the node-control hook fires — the checkpoint layer invalidates volatile
/// copies held there, the job layer kills the rank fibers running on it.
struct NodeEvent {
  sim::TimePoint at;
  hw::NodeId node = hw::kInvalidNode;
  bool up = false;
};

struct FaultSpec {
  std::uint64_t seed = 0xFA17;
  /// Probability that any single fabric traversal drops the message.
  double drop_probability = 0.0;
  std::vector<LinkEvent> links;
  std::vector<GatewayEvent> gateways;
  std::vector<NodeEvent> nodes;

  /// False for the all-defaults spec: such a plan is a complete no-op.
  bool active() const {
    return drop_probability > 0.0 || !links.empty() || !gateways.empty() ||
           !nodes.empty();
  }
};

/// Materialises a FaultSpec against attached fabrics and the gateway layer.
/// Usage: construct, attach() every fabric, set_gateway_control() if the
/// spec has gateway events, then arm() once before running the simulation.
class FaultPlan {
 public:
  FaultPlan(sim::Engine& engine, FaultSpec spec);
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultSpec& spec() const { return spec_; }

  /// Subjects `fabric` to this plan (drop probability + link events whose
  /// endpoints are attached to it).  The plan must outlive the fabric's use.
  void attach(Fabric& fabric);

  /// Hook through which gateway events are applied (typically
  /// cbp::BridgedTransport::set_gateway_up); keeps net:: independent of cbp.
  using GatewayControl = std::function<void(hw::NodeId, bool)>;
  void set_gateway_control(GatewayControl control);

  /// Hook invoked when a NodeEvent fires, *after* the node's fabric access
  /// was cut (or restored) on every attached fabric.  The resiliency layers
  /// install this to invalidate checkpoint copies and abort rank fibers.
  using NodeControl = std::function<void(hw::NodeId, bool)>;
  void set_node_control(NodeControl control);

  /// Schedules every link/gateway event on the engine.  Call exactly once,
  /// after all attach()/set_gateway_control() calls, before the run.
  void arm();

  /// Messages dropped by this plan's probability hook (all fabrics).
  std::int64_t injected_drops() const { return injected_drops_; }

 private:
  sim::Engine* engine_;
  FaultSpec spec_;
  util::Rng rng_;
  std::vector<Fabric*> fabrics_;
  GatewayControl gateway_control_;
  NodeControl node_control_;
  std::int64_t injected_drops_ = 0;
  bool armed_ = false;
};

}  // namespace deep::net

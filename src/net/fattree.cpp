#include "net/fattree.hpp"

#include <algorithm>

#include "net/pool.hpp"

namespace deep::net {

FatTreeFabric::FatTreeFabric(sim::Engine& engine, std::string name,
                             FatTreeParams params)
    : Fabric(engine, std::move(name)), params_(params) {
  DEEP_EXPECT(params_.leaf_radix >= 1, "FatTreeFabric: leaf_radix must be >= 1");
  DEEP_EXPECT(params_.uplinks >= 1 && params_.uplinks <= params_.leaf_radix,
              "FatTreeFabric: uplinks must be in [1, leaf_radix]");
  DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
              "FatTreeFabric: bandwidth must be positive");
}

Nic& FatTreeFabric::attach(hw::NodeId node) {
  Nic& nic = Fabric::attach(node);
  const int leaf = attached_count_++ / params_.leaf_radix;
  leaves_[node] = leaf;
  // Pre-create every link slot this node can touch: the partitioned send
  // path must never grow the map (a rehash would race across workers).
  link_free_.try_emplace(node_tx(node));
  link_free_.try_emplace(node_rx(node));
  for (int u = 0; u < params_.uplinks; ++u) {
    link_free_.try_emplace(trunk(leaf, u, Dir::Up));
    link_free_.try_emplace(trunk(leaf, u, Dir::Down));
  }
  partition_dirty_.store(true, std::memory_order_release);
  return nic;
}

int FatTreeFabric::leaf_of(hw::NodeId node) const {
  auto it = leaves_.find(node);
  DEEP_EXPECT(it != leaves_.end(), "FatTreeFabric: node not attached");
  return it->second;
}

int FatTreeFabric::hops(hw::NodeId src, hw::NodeId dst) const {
  return leaf_of(src) == leaf_of(dst) ? 1 : 3;
}

std::vector<std::pair<hw::NodeId, hw::NodeId>> FatTreeFabric::topology_edges()
    const {
  // Same-leaf pairs: the only locality a two-level tree has.
  std::vector<std::pair<hw::NodeId, int>> nodes(leaves_.begin(), leaves_.end());
  std::sort(nodes.begin(), nodes.end());
  std::vector<std::pair<hw::NodeId, hw::NodeId>> edges;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      if (nodes[i].second == nodes[j].second)
        edges.emplace_back(nodes[i].first, nodes[j].first);
  return edges;
}

void FatTreeFabric::refresh_partitions() const {
  const int nleaves =
      (attached_count_ + params_.leaf_radix - 1) / params_.leaf_radix;
  const std::uint32_t nparts = engine_->partitions();
  leaf_part_.assign(static_cast<std::size_t>(std::max(nleaves, 1)), kMixedLeaf);
  part_present_.assign(nparts, 0);
  std::vector<char> leaf_seen(leaf_part_.size(), 0);
  pair_share_leaf_.assign(static_cast<std::size_t>(nparts) * nparts, 0);
  // Per-leaf member partitions (leaves are small: leaf_radix nodes).
  std::vector<std::vector<std::uint32_t>> members(leaf_part_.size());
  for (const auto& [node, leaf] : leaves_) {
    const std::uint32_t p = partition_of(node);
    if (p < nparts) part_present_[p] = 1;
    members[leaf].push_back(p);
  }
  for (std::size_t leaf = 0; leaf < members.size(); ++leaf) {
    if (members[leaf].empty()) continue;
    leaf_seen[leaf] = 1;
    std::uint32_t owner = members[leaf].front();
    for (const std::uint32_t p : members[leaf]) {
      if (p != owner) owner = kMixedLeaf;
      for (const std::uint32_t q : members[leaf])
        if (p != q && p < nparts && q < nparts)
          pair_share_leaf_[static_cast<std::size_t>(p) * nparts + q] = 1;
    }
    leaf_part_[leaf] = owner;
  }
  partition_dirty_.store(false, std::memory_order_release);
}

void FatTreeFabric::ensure_partitions() const {
  if (!partition_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(partition_mu_);
  if (partition_dirty_.load(std::memory_order_relaxed)) refresh_partitions();
}

sim::Duration FatTreeFabric::lookahead(std::uint32_t src_part,
                                       std::uint32_t dst_part) const {
  if (!partitioned()) return Fabric::lookahead(src_part, dst_part);
  if (src_part == dst_part) return sim::kUnconstrainedLookahead;
  ensure_partitions();
  const std::uint32_t nparts = engine_->partitions();
  if (src_part >= nparts || dst_part >= nparts || !part_present_[src_part] ||
      !part_present_[dst_part])
    return sim::kUnconstrainedLookahead;
  const bool share =
      pair_share_leaf_[static_cast<std::size_t>(src_part) * nparts + dst_part] !=
      0;
  return params_.adapter_latency + params_.switch_latency * (share ? 1 : 3);
}

void FatTreeFabric::send(Message msg, Service svc) {
  DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
              "FatTreeFabric::send: endpoint not attached");
  DEEP_EXPECT(msg.size_bytes >= 0, "FatTreeFabric::send: negative size");
  if (faulted(msg)) return;
  const sim::Duration wire = serialisation(msg.size_bytes);
  const int src_leaf = leaf_of(msg.src);
  const int dst_leaf = leaf_of(msg.dst);

  if (svc == Service::Control) {
    // Priority virtual channel: latency only.  Analytic, so the base
    // deliver_at handles a cross-partition destination.
    const int switches = src_leaf == dst_leaf ? 1 : 3;
    deliver_at(engine_->now() + params_.adapter_latency * 2 +
                   params_.switch_latency * switches + wire,
               std::move(msg));
    return;
  }

  int switches = 1;
  int plane = 0;
  if (src_leaf != dst_leaf) {
    switches = 3;
    if (params_.routing == FatTreeRouting::Adaptive && !partitioned()) {
      // Least-loaded plane: the spine plane whose up/down trunk pair frees
      // earliest, lowest index on ties.  Reads only the simulated link-busy
      // table, so the choice — and the whole run — replays bit-identically.
      // Partitioned runs fall back to the ECMP hash below: trunk state is
      // owned per-leaf-partition there and must not be read cross-worker.
      sim::TimePoint best{};
      for (int u = 0; u < params_.uplinks; ++u) {
        const sim::TimePoint busy =
            std::max(link_free_.at(trunk(src_leaf, u, Dir::Up)),
                     link_free_.at(trunk(dst_leaf, u, Dir::Down)));
        if (u == 0 || busy < best) {
          best = busy;
          plane = u;
        }
      }
    } else {
      // Static ECMP: a well-mixed hash of (src, dst) picks the uplink /
      // spine plane for this pair (linear hashes degenerate on strided
      // traffic).
      std::uint64_t h = (static_cast<std::uint64_t>(msg.src) << 32) ^
                        static_cast<std::uint64_t>(msg.dst);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      h *= 0xc4ceb9fe1a85ec53ULL;
      h ^= h >> 33;
      plane = static_cast<int>(h % static_cast<std::uint64_t>(params_.uplinks));
    }
  }

  if (!partitioned()) {
    // Serial path: the exact historical algorithm.  Path links are
    // wormhole-reserved from head arrival to tail departure.
    std::vector<std::int64_t> links;
    links.push_back(node_tx(msg.src));
    if (src_leaf != dst_leaf) {
      links.push_back(trunk(src_leaf, plane, Dir::Up));
      links.push_back(trunk(dst_leaf, plane, Dir::Down));
    }
    links.push_back(node_rx(msg.dst));

    sim::TimePoint head = engine_->now() + params_.adapter_latency +
                          params_.switch_latency * switches;
    for (const std::int64_t link : links) {
      auto it = link_free_.find(link);
      if (it != link_free_.end()) head = std::max(head, it->second);
    }
    const sim::TimePoint tail = head + wire;
    for (const std::int64_t link : links) link_free_[link] = tail;

    deliver_at(tail + params_.adapter_latency, std::move(msg));
    return;
  }

  // Partitioned: endpoint-segmented.  Node links belong to their endpoint's
  // partition; a trunk belongs to its leaf's partition when the leaf is
  // uniformly owned and is analytic (never read or booked) otherwise.  The
  // source side books its own links, the destination side books its own from
  // a continuation on its partition at the analytic head arrival; see
  // docs/parallel_engine.md for the contention-approximation argument.
  ensure_partitions();
  const std::uint32_t src_part = partition_of(msg.src);
  const std::uint32_t dst_part = partition_of(msg.dst);

  sim::TimePoint head = engine_->now() + params_.adapter_latency +
                        params_.switch_latency * switches;
  head = std::max(head, link_free_.at(node_tx(msg.src)));
  const bool up_owned =
      src_leaf != dst_leaf && leaf_part_[src_leaf] == src_part;
  const std::int64_t up = trunk(src_leaf, plane, Dir::Up);
  if (up_owned) head = std::max(head, link_free_.at(up));
  const bool down_same_side =
      src_leaf != dst_leaf && leaf_part_[dst_leaf] == src_part;

  if (src_part == dst_part) {
    const std::int64_t down = trunk(dst_leaf, plane, Dir::Down);
    if (down_same_side) head = std::max(head, link_free_.at(down));
    head = std::max(head, link_free_.at(node_rx(msg.dst)));
    const sim::TimePoint tail = head + wire;
    link_free_.at(node_tx(msg.src)) = tail;
    if (up_owned) link_free_.at(up) = tail;
    if (down_same_side) link_free_.at(down) = tail;
    link_free_.at(node_rx(msg.dst)) = tail;
    deliver_at(tail + params_.adapter_latency, std::move(msg));
    return;
  }

  // Cross partition: book the source side until its local tail, continue on
  // the destination partition.  `head` >= now + adapter + switches * switch
  // and `switches` is 3 whenever the leaves differ, so the continuation is
  // always at or beyond the pair lookahead bound.
  const sim::TimePoint src_tail = head + wire;
  link_free_.at(node_tx(msg.src)) = src_tail;
  if (up_owned) link_free_.at(up) = src_tail;
  const bool down_owned =
      src_leaf != dst_leaf && leaf_part_[dst_leaf] == dst_part;
  engine_->schedule_on(
      dst_part, head,
      [this, wire, dst_leaf, plane, down_owned,
       m = PooledMessage(std::move(msg))]() mutable {
        Message msg = m.take();
        sim::TimePoint head = engine_->now();
        const std::int64_t down = trunk(dst_leaf, plane, Dir::Down);
        if (down_owned) head = std::max(head, link_free_.at(down));
        head = std::max(head, link_free_.at(node_rx(msg.dst)));
        const sim::TimePoint tail = head + wire;
        if (down_owned) link_free_.at(down) = tail;
        link_free_.at(node_rx(msg.dst)) = tail;
        deliver_at(tail + params_.adapter_latency, std::move(msg));
      });
}

}  // namespace deep::net

#include "net/fattree.hpp"

#include <algorithm>

namespace deep::net {

FatTreeFabric::FatTreeFabric(sim::Engine& engine, std::string name,
                             FatTreeParams params)
    : Fabric(engine, std::move(name)), params_(params) {
  DEEP_EXPECT(params_.leaf_radix >= 1, "FatTreeFabric: leaf_radix must be >= 1");
  DEEP_EXPECT(params_.uplinks >= 1 && params_.uplinks <= params_.leaf_radix,
              "FatTreeFabric: uplinks must be in [1, leaf_radix]");
  DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
              "FatTreeFabric: bandwidth must be positive");
}

Nic& FatTreeFabric::attach(hw::NodeId node) {
  Nic& nic = Fabric::attach(node);
  leaves_[node] = attached_count_++ / params_.leaf_radix;
  return nic;
}

int FatTreeFabric::leaf_of(hw::NodeId node) const {
  auto it = leaves_.find(node);
  DEEP_EXPECT(it != leaves_.end(), "FatTreeFabric: node not attached");
  return it->second;
}

int FatTreeFabric::hops(hw::NodeId src, hw::NodeId dst) const {
  return leaf_of(src) == leaf_of(dst) ? 1 : 3;
}

void FatTreeFabric::send(Message msg, Service svc) {
  DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
              "FatTreeFabric::send: endpoint not attached");
  DEEP_EXPECT(msg.size_bytes >= 0, "FatTreeFabric::send: negative size");
  if (faulted(msg)) return;
  const sim::Duration wire = serialisation(msg.size_bytes);
  const int src_leaf = leaf_of(msg.src);
  const int dst_leaf = leaf_of(msg.dst);

  if (svc == Service::Control) {
    // Priority virtual channel: latency only.
    const int switches = src_leaf == dst_leaf ? 1 : 3;
    deliver_at(engine_->now() + params_.adapter_latency * 2 +
                   params_.switch_latency * switches + wire,
               std::move(msg));
    return;
  }

  // Path links, wormhole-reserved from head arrival to tail departure.
  std::vector<std::int64_t> links;
  links.push_back(node_tx(msg.src));
  int switches = 1;
  if (src_leaf != dst_leaf) {
    // Static ECMP: a well-mixed hash of (src, dst) picks the uplink / spine
    // plane for this pair (linear hashes degenerate on strided traffic).
    std::uint64_t h = (static_cast<std::uint64_t>(msg.src) << 32) ^
                      static_cast<std::uint64_t>(msg.dst);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    const int plane = static_cast<int>(h % static_cast<std::uint64_t>(params_.uplinks));
    links.push_back(trunk(src_leaf, plane, Dir::Up));
    links.push_back(trunk(dst_leaf, plane, Dir::Down));
    switches = 3;
  }
  links.push_back(node_rx(msg.dst));

  sim::TimePoint head =
      engine_->now() + params_.adapter_latency + params_.switch_latency * switches;
  for (const std::int64_t link : links) {
    auto it = link_free_.find(link);
    if (it != link_free_.end()) head = std::max(head, it->second);
  }
  const sim::TimePoint tail = head + wire;
  for (const std::int64_t link : links) link_free_[link] = tail;

  deliver_at(tail + params_.adapter_latency, std::move(msg));
}

}  // namespace deep::net

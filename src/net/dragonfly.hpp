#pragma once
// DragonflyFabric: the modern counterfactual to both the torus booster and
// the fat-tree cluster — `groups` fully-connected groups of
// `routers_per_group` routers, every group pair joined by one bidirectional
// global (optical) link, `nodes_per_router` nodes per router.
//
// Routing offers the three classic dragonfly policies:
//   * Minimal  — the direct l-g-l path (at most one local hop to the global
//     link's host router, the global hop, one local hop to the destination
//     router);
//   * Valiant  — via a deterministic intermediate group (two global hops),
//     spreading adversarial traffic over the global channels;
//   * Adaptive — UGAL-style: per message, take the Valiant detour when the
//     minimal path's global link is busier than the detour's two global
//     links by more than `adaptive_bias`.  The decision keys ONLY on the
//     simulated link-busy table (link_free_), never on host state or RNG,
//     so replays are bit-identical at any worker count.
//
// Faults compose like the torus: router-level links are named by the
// *representative node* (lowest attached id) of each endpoint router, so
// chaos FaultPlans kill global links with plain set_link_up(a, b) calls.
// When a route crosses a dead link, send() falls back — in every routing
// mode — to the first alive candidate path in a deterministic scan order
// (minimal, then Valiant per intermediate group, then a same-group router
// detour); a message only drops when no candidate survives.  This is the
// path-diversity story the torus cannot tell: a killed global link reroutes
// instead of dropping.
//
// Wormhole timing follows the fat-tree: the head pays per-router latency
// (plus the global cable latency per global hop) and queues on busy links;
// every traversed link is reserved until the tail passes.  Partitioned runs
// use endpoint-segmented booking: node links belong to their endpoint's
// partition, router/global links become analytic (latency-only), and
// adaptive selection deterministically degrades to minimal routing — other
// partitions' link state must not be read (docs/parallel_engine.md).

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"

namespace deep::net {

/// Path-selection policy (see file comment).
enum class DragonflyRouting {
  Minimal,
  Valiant,
  Adaptive,
};

struct DragonflyParams {
  int groups = 4;             // g: groups, all-to-all global links
  int routers_per_group = 4;  // a: routers per group, all-to-all local links
  int nodes_per_router = 2;   // p: terminal nodes per router
  sim::Duration adapter_latency = sim::from_nanos(400);  // NIC each end
  sim::Duration router_latency = sim::from_nanos(150);   // per router visited
  sim::Duration global_latency = sim::from_nanos(500);   // optical cable
  double local_bandwidth_bytes_per_sec = 6.0e9;
  double global_bandwidth_bytes_per_sec = 4.5e9;
  DragonflyRouting routing = DragonflyRouting::Minimal;
  /// UGAL hysteresis: the Valiant detour is taken only when it undercuts the
  /// minimal path's estimated queueing by more than this.
  sim::Duration adaptive_bias = sim::from_nanos(200);
};

class DragonflyFabric final : public Fabric {
 public:
  DragonflyFabric(sim::Engine& engine, std::string name,
                  DragonflyParams params);

  const DragonflyParams& params() const { return params_; }

  Nic& attach(hw::NodeId node) override;
  void send(Message msg, Service svc) override;

  int router_of(hw::NodeId node) const;
  int group_of(hw::NodeId node) const { return router_of(node) / params_.routers_per_group; }
  /// Routers visited on the minimal path (1 same router .. 4 cross group).
  int hops(hw::NodeId src, hw::NodeId dst) const;
  /// True when the minimal path src->dst crosses a global link.
  bool crosses_global(hw::NodeId src, hw::NodeId dst) const {
    return group_of(src) != group_of(dst);
  }

  /// The node naming router `router`'s links for set_link_up (lowest
  /// attached id on that router).  Chaos plans kill the global link between
  /// groups via set_link_up(representative(h1), representative(h2), false).
  hw::NodeId representative(int router) const;
  /// Router index (within `group`) hosting the global link to `other`.
  int global_host(int group, int other) const;
  /// Valiant detours taken so far (all lanes) — fault fallbacks included.
  std::int64_t valiant_detours() const;

  /// Cheapest event a dragonfly send can place on another partition: one
  /// adapter plus a single router traversal (the same-router case).
  sim::Duration lookahead() const override {
    return params_.adapter_latency + params_.router_latency;
  }

  /// Router-distance pair lookahead: adapter plus the minimal-path router
  /// count between the two partitions' closest routers.  The minimal count
  /// lower-bounds every candidate path (Valiant only adds hops), so the
  /// bound holds whatever routing policy is active.
  sim::Duration lookahead(std::uint32_t src_part,
                          std::uint32_t dst_part) const override;

  /// Same-router pairs, an intra-group router chain and the global-link
  /// host adjacency — the locality graph net::auto_partition() grows
  /// blocks from (groups are the natural blocks; global links the cut).
  std::vector<std::pair<hw::NodeId, hw::NodeId>> topology_edges()
      const override;

  sim::Duration serialisation(std::int64_t bytes, bool global) const {
    return sim::from_seconds(static_cast<double>(bytes) /
                             (global ? params_.global_bandwidth_bytes_per_sec
                                     : params_.local_bandwidth_bytes_per_sec));
  }

 protected:
  /// True when any candidate path (minimal, Valiant, same-group detour)
  /// survives the live link-state table; send() then picks that same path.
  bool route_up(hw::NodeId src, hw::NodeId dst) const override;

  void on_node_partition(hw::NodeId, std::uint32_t) override {
    partition_dirty_.store(true, std::memory_order_release);
  }

 private:
  /// One candidate route: the router-level hops between src's and dst's
  /// routers (node links are implicit).  Valiant worst case is five hops:
  /// local, global, local, global, local.
  struct Path {
    struct Hop {
      int from = 0;  // router
      int to = 0;    // router
      bool global = false;
    };
    std::array<Hop, 5> hops{};
    int nhops = 0;
    int globals = 0;
    bool valiant = false;
    int routers() const { return nhops + 1; }
    void add(int from, int to, bool global) {
      hops[static_cast<std::size_t>(nhops++)] = {from, to, global};
      if (global) ++globals;
    }
  };

  std::int64_t node_tx(hw::NodeId n) const { return n * 4; }
  std::int64_t node_rx(hw::NodeId n) const { return n * 4 + 1; }
  /// Directed router-level link ids (negative, disjoint from node links).
  std::int64_t local_link(int r_from, int r_to) const {
    return -(static_cast<std::int64_t>(r_from) * total_routers_ + r_to + 1);
  }
  std::int64_t global_link(int g_from, int g_to) const {
    return -(static_cast<std::int64_t>(total_routers_) * total_routers_ +
             static_cast<std::int64_t>(g_from) * params_.groups + g_to + 1);
  }
  std::int64_t hop_link(const Path::Hop& hop) const {
    return hop.global ? global_link(hop.from / params_.routers_per_group,
                                    hop.to / params_.routers_per_group)
                      : local_link(hop.from, hop.to);
  }

  Path minimal_path(int src_router, int dst_router) const;
  /// The l-g-l-g-l detour via intermediate group `via`.
  Path valiant_path(int src_router, int dst_router, int via) const;
  /// Deterministic default intermediate group for (src, dst) groups.
  int valiant_group(int src_group, int dst_group) const;
  /// Every hop's link admin-up (named by endpoint-router representatives).
  bool path_alive(const Path& path) const;
  /// Canonical alive-candidate scan; false only when every candidate is cut.
  bool alive_path(int src_router, int dst_router, Path& out) const;
  /// The path send() takes: routing policy, then fault fallback.
  Path choose_path(int src_router, int dst_router) const;
  /// Estimated queueing delay of a link right now (0 when idle).
  sim::Duration queue_estimate(std::int64_t link) const;

  void ensure_partitions() const;
  void refresh_partitions() const;
  int router_pair_hops(int r1, int r2) const;

  DragonflyParams params_;
  int total_routers_ = 0;
  int capacity_ = 0;
  std::unordered_map<hw::NodeId, int> routers_;    // node -> router index
  std::vector<hw::NodeId> router_rep_;             // router -> lowest node
  // Link booking: every router-level slot is created in the constructor and
  // node slots at attach, so the partitioned send path never rehashes.
  std::unordered_map<std::int64_t, sim::TimePoint> link_free_;
  int attached_count_ = 0;
  // Per-lane Valiant counters (summed on read; lanes never share a window).
  mutable std::vector<std::int64_t> valiant_lane_;
  // Partition geometry (lazy, guarded like TorusFabric's).
  mutable std::vector<char> part_present_;
  mutable std::vector<std::int64_t> pair_hops_;  // P*P min routers, -1 = none
  mutable std::atomic<bool> partition_dirty_{false};
  mutable std::mutex partition_mu_;
  obs::Counter m_global_hops_;  // global-link traversals
  obs::Counter m_valiant_;      // Valiant detours taken
};

}  // namespace deep::net

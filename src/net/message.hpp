#pragma once
// Messages exchanged between simulated nodes.
//
// A Message models a network transfer: `size_bytes` is what the wire sees
// (headers included), `payload` optionally carries real bytes so the layers
// above (MPI, OmpSs offload) are functionally correct, and `header` carries
// an in-simulator protocol struct (the simulator's honest shortcut for
// header serialisation).

#include <any>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/spec.hpp"

namespace deep::net {

/// Well-known NIC ports (protocol demultiplexing on arrival).
enum class Port : std::uint16_t {
  Mpi = 1,   // ParaStation-MPI transport
  Cbp = 2,   // Cluster-Booster Protocol (gateway bridging)
  Raw = 15,  // microbenchmarks / tests
};

using Payload = std::shared_ptr<const std::vector<std::byte>>;

inline Payload make_payload(std::vector<std::byte> bytes) {
  return std::make_shared<const std::vector<std::byte>>(std::move(bytes));
}

struct Message {
  hw::NodeId src = hw::kInvalidNode;
  hw::NodeId dst = hw::kInvalidNode;
  Port port = Port::Raw;
  std::int64_t size_bytes = 0;  // modelled wire size
  std::any header;              // protocol-defined metadata
  Payload payload;              // optional real data bytes
};

/// Service class a sender requests from a fabric.  On EXTOLL these map to
/// the VELO (small-message) and RMA (bulk) engines; other fabrics may
/// ignore the distinction.
enum class Service {
  Small,    // latency-optimised, e.g. eager MPI messages
  Bulk,     // bandwidth-optimised, e.g. rendezvous data
  Control,  // tiny protocol messages (RTS/CTS): ride a priority virtual
            // channel and do not queue behind bulk traffic
};

}  // namespace deep::net

#pragma once
// Messages exchanged between simulated nodes.
//
// A Message models a network transfer: `size_bytes` is what the wire sees
// (headers included), `payload` optionally carries real bytes so the layers
// above (MPI, OmpSs offload) are functionally correct, and `header` carries
// an in-simulator protocol struct (the simulator's honest shortcut for
// header serialisation).
//
// The header is a tagged in-place variant over the *closed* set of protocol
// headers the simulator speaks — MPI wire headers and CBP gateway frames —
// rather than type-erased std::any: no per-message heap allocation, no RTTI
// on the demux path, and the compiler sees every alternative (docs/perf.md).

#include <cstdint>
#include <variant>
#include <vector>

#include "hw/spec.hpp"
#include "mpi/wire.hpp"
#include "net/pool.hpp"

namespace deep::net {

/// Well-known NIC ports (protocol demultiplexing on arrival).
enum class Port : std::uint16_t {
  Mpi = 1,   // ParaStation-MPI transport
  Cbp = 2,   // Cluster-Booster Protocol (gateway bridging)
  Io = 3,    // storage traffic (io::IoNet: parallel FS, buddy checkpoints)
  Raw = 15,  // microbenchmarks / tests
};

/// Service class a sender requests from a fabric.  On EXTOLL these map to
/// the VELO (small-message) and RMA (bulk) engines; other fabrics may
/// ignore the distinction.
enum class Service {
  Small,    // latency-optimised, e.g. eager MPI messages
  Bulk,     // bandwidth-optimised, e.g. rendezvous data
  Control,  // tiny protocol messages (RTS/CTS): ride a priority virtual
            // channel and do not queue behind bulk traffic
};

/// Storage-protocol header (io::IoNet): one request/reply of a parallel-FS
/// or buddy-checkpoint transfer.  The wire cost is the message's size_bytes;
/// this header only correlates replies with pending operations.  `kind` is
/// an io::OpKind value kept as a raw byte so net:: stays independent of io::.
struct IoHeader {
  std::uint64_t op = 0;                       // requester-unique operation id
  hw::NodeId requester = hw::kInvalidNode;    // node to send the reply to
  std::uint8_t kind = 0;                      // io::OpKind
  bool reply = false;                         // request vs completion
  std::int64_t reply_bytes = 0;               // payload the reply will carry
};

/// Cluster-Booster Protocol frame: the gateway-bridging envelope around a
/// message crossing fabrics.  Deliberately *flattened* — it records the
/// inner message's addressing/metadata (and its wire header, if any) as
/// plain fields instead of nesting a whole net::Message, so the frame can
/// live in place inside the header variant below; the inner payload rides
/// on the wrapped message itself.  The bridge reconstructs the inner
/// Message on the far side (cbp/gateway.cpp).
struct CbpFrame {
  hw::NodeId inner_src = hw::kInvalidNode;
  hw::NodeId inner_dst = hw::kInvalidNode;
  Port inner_port = Port::Raw;
  std::int64_t inner_size_bytes = 0;
  bool inner_has_wire = false;     // inner message carried a WireHeader
  mpi::WireHeader inner_wire{};    // valid iff inner_has_wire
  bool inner_has_io = false;       // inner message carried an IoHeader
  IoHeader inner_io{};             // valid iff inner_has_io
  Service svc = Service::Small;    // service class to re-inject with
  int attempts = 0;                // delivery attempts so far (retry cap)
  hw::NodeId last_gateway = hw::kInvalidNode;  // gateway to avoid on retry
};

/// The closed set of protocol headers a Message can carry in place.
using Header = std::variant<std::monostate, mpi::WireHeader, CbpFrame, IoHeader>;

struct Message {
  hw::NodeId src = hw::kInvalidNode;
  hw::NodeId dst = hw::kInvalidNode;
  Port port = Port::Raw;
  std::int64_t size_bytes = 0;  // modelled wire size
  Header header;                // protocol-defined metadata, in place
  Payload payload;              // optional real data bytes (pooled)
};

/// Typed header access; nullptr when the message carries something else.
inline mpi::WireHeader* wire_header(Message& m) {
  return std::get_if<mpi::WireHeader>(&m.header);
}
inline const mpi::WireHeader* wire_header(const Message& m) {
  return std::get_if<mpi::WireHeader>(&m.header);
}
inline CbpFrame* cbp_frame(Message& m) {
  return std::get_if<CbpFrame>(&m.header);
}
inline const CbpFrame* cbp_frame(const Message& m) {
  return std::get_if<CbpFrame>(&m.header);
}
inline IoHeader* io_header(Message& m) {
  return std::get_if<IoHeader>(&m.header);
}
inline const IoHeader* io_header(const Message& m) {
  return std::get_if<IoHeader>(&m.header);
}

}  // namespace deep::net

#pragma once
// Slab-style pooling for the per-message hot path (docs/perf.md).
//
// Three cooperating pieces, all free-list based and all sharded per
// (session, lane) — util/lane.hpp.  A serial simulation runs entirely on
// session 0 / lane 0 and sees the exact historical single-pool behaviour;
// under the parallel engine each partition executes on its own lane,
// `instance()` resolves to that lane's pool, and free-list operations stay
// lock-free because a lane is only ever driven by one thread at a time
// (docs/parallel_engine.md).  Concurrent in-process simulations (the
// multi-tenant service, docs/service.md) each claim a session slot, so
// their pools never alias even though every session's threads default to
// lane 0.  The only shared
// mutable state is the payload refcount, which is atomic so a payload handed
// across partitions can be retained/released from its new home lane; the
// freed node simply joins the releasing lane's free list (nodes are never
// destroyed, so migrating between lane pools is harmless).
//
//  * BufferPool + Payload — reference-counted, pool-backed payload bytes.
//    Payload replaces the old shared_ptr<const vector<byte>>: same call-site
//    surface (operator*, operator->, bool), but the buffer node and its byte
//    storage are recycled through a free list, so steady-state traffic
//    performs no payload allocations at all.  copy_payload() is the hot-path
//    entry (memcpy into a recycled buffer); make_payload() adopts an
//    existing vector (convenience for tests and cold paths).
//
//  * MessagePool + PooledMessage — a free list of net::Message slots used to
//    carry messages through scheduled events.  A Message is too large for
//    the engine's 48-byte inline EventFn buffer; parking it in a pooled slot
//    and capturing the 8-byte owner keeps event capture allocation-free.
//    PooledMessage is the RAII owner: releasing on destruction makes engine
//    teardown with undelivered events leak-free.
//
//  * PoolAllocator<T> — a rebindable free-list allocator for
//    std::allocate_shared and friends, used by the MPI layer to recycle
//    Request control blocks.
//
// Invariants (tested in tests/netperf_test.cpp):
//  * a released buffer/slot is reused before any new one is allocated;
//  * releasing resets payload references so pooled slots never pin buffers;
//  * pools only grow to the high-water mark of in-flight objects.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "util/lane.hpp"

namespace deep::net {

struct Message;

namespace detail {

/// One pooled payload buffer: bytes + intrusive refcount + free-list link.
/// The refcount is atomic because Payload handles may be copied on one
/// execution lane and dropped on another after crossing a partition bridge;
/// everything else is only touched by the lane whose free list holds the
/// node.
struct Buffer {
  std::vector<std::byte> bytes;
  std::atomic<std::int32_t> refs{0};
  Buffer* next_free = nullptr;
};

}  // namespace detail

/// Free-list pool of payload buffers.  Buffers keep their byte capacity
/// across reuse, so a steady-state message mix stops allocating once the
/// working set has been seen once.
class BufferPool {
 public:
  /// The current execution lane's pool (lane 0 — the historical process-wide
  /// singleton — for serial runs and threads outside the parallel engine).
  static BufferPool& instance();

  /// A buffer with refs == 1 and bytes.size() == size (capacity reused).
  detail::Buffer* acquire(std::size_t size);
  void release(detail::Buffer* buffer);

  /// Introspection for tests.
  std::size_t total_buffers() const { return all_.size(); }
  std::size_t free_buffers() const { return free_count_; }

 private:
  std::vector<std::unique_ptr<detail::Buffer>> all_;  // owns every node
  detail::Buffer* free_head_ = nullptr;
  std::size_t free_count_ = 0;
};

/// Reference-counted handle to a pooled, immutable payload buffer.  Mirrors
/// the pointer surface of the shared_ptr it replaced.
class Payload {
 public:
  Payload() = default;
  Payload(const Payload& o) : buf_(o.buf_) {
    if (buf_ != nullptr) buf_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Payload(Payload&& o) noexcept : buf_(o.buf_) { o.buf_ = nullptr; }
  Payload& operator=(const Payload& o) {
    if (this != &o) {
      reset();
      buf_ = o.buf_;
      if (buf_ != nullptr) buf_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      reset();
      buf_ = o.buf_;
      o.buf_ = nullptr;
    }
    return *this;
  }
  ~Payload() { reset(); }

  explicit operator bool() const { return buf_ != nullptr; }
  const std::vector<std::byte>& operator*() const { return buf_->bytes; }
  const std::vector<std::byte>* operator->() const { return &buf_->bytes; }

  void reset() {
    if (buf_ != nullptr) {
      BufferPool::instance().release(buf_);
      buf_ = nullptr;
    }
  }

 private:
  friend Payload make_payload(std::vector<std::byte> bytes);
  friend Payload copy_payload(std::span<const std::byte> bytes);
  explicit Payload(detail::Buffer* buf) : buf_(buf) {}

  detail::Buffer* buf_ = nullptr;
};

/// Hot path: copies `bytes` into a recycled pool buffer (no allocation once
/// the pool is warm).
inline Payload copy_payload(std::span<const std::byte> bytes) {
  detail::Buffer* buf = BufferPool::instance().acquire(bytes.size());
  if (!bytes.empty())
    std::memcpy(buf->bytes.data(), bytes.data(), bytes.size());
  return Payload(buf);
}

/// Cold path: adopts an existing vector (its storage replaces the pooled
/// buffer's).  Convenient for tests and one-off construction.
inline Payload make_payload(std::vector<std::byte> bytes) {
  detail::Buffer* buf = BufferPool::instance().acquire(0);
  buf->bytes = std::move(bytes);
  return Payload(buf);
}

/// Free list of Message slots for carrying messages through scheduled
/// events; see PooledMessage.
class MessagePool {
 public:
  /// The current execution lane's pool (see BufferPool::instance).
  static MessagePool& instance();

  Message* acquire();
  /// Clears the slot (header to monostate, payload dropped) and recycles it.
  void release(Message* slot);

  /// Introspection for tests.
  std::size_t total_slots() const { return all_.size(); }
  std::size_t free_slots() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Message>> all_;  // owns every slot
  std::vector<Message*> free_;
};

/// Move-only owner of one pooled Message slot.  Construct from a Message to
/// park it; take() moves it back out.  The slot returns to the pool when the
/// owner dies — including when an engine tears down undelivered events.
class PooledMessage {
 public:
  PooledMessage() = default;
  explicit PooledMessage(Message&& msg);
  PooledMessage(PooledMessage&& o) noexcept : slot_(o.slot_) {
    o.slot_ = nullptr;
  }
  PooledMessage& operator=(PooledMessage&& o) noexcept {
    if (this != &o) {
      reset();
      slot_ = o.slot_;
      o.slot_ = nullptr;
    }
    return *this;
  }
  PooledMessage(const PooledMessage&) = delete;
  PooledMessage& operator=(const PooledMessage&) = delete;
  ~PooledMessage() { reset(); }

  /// The parked message, moved out.  The slot stays owned (and is recycled
  /// when this owner is destroyed).
  Message&& take() { return static_cast<Message&&>(*slot_); }

 private:
  void reset();

  Message* slot_ = nullptr;
};

/// Rebindable free-list allocator for single-object std::allocate_shared:
/// the combined control-block+object allocation is recycled per type, so
/// steady-state Request churn stops hitting the heap.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (n != 1)
      return static_cast<T*>(::operator new(n * sizeof(T)));
    auto& fl = free_list();
    if (!fl.empty()) {
      void* p = fl.back();
      fl.pop_back();
      return static_cast<T*>(p);
    }
    return static_cast<T*>(::operator new(sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    free_list().push_back(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }

 private:
  static std::vector<void*>& free_list() {
    // One list per (session, lane) shard, reachable forever through a
    // static slot table (same pattern as BufferPool/MessagePool in
    // pool.cpp): parked blocks must stay reachable at exit or leak checkers
    // would (rightly) report them as lost.  thread_local storage would not
    // do — a worker thread's exit drops its TLS pointer and strands the
    // parked blocks.  The lane discipline (one thread drives a lane at a
    // time) keeps each list single-threaded, and session sharding keeps
    // concurrent in-process simulations off each other's lists; a block
    // freed on a different shard than it was allocated on is type-erased
    // raw storage, so adoption is harmless.
    static std::array<std::atomic<std::vector<void*>*>,
                      util::kMaxSessions * util::kMaxLanes>
        slots{};
    std::atomic<std::vector<void*>*>& slot = slots[util::pool_shard()];
    std::vector<void*>* fl = slot.load(std::memory_order_acquire);
    if (fl == nullptr) {
      auto* fresh = new std::vector<void*>();
      if (slot.compare_exchange_strong(fl, fresh, std::memory_order_acq_rel))
        return *fresh;
      delete fresh;  // lost a (contract-violating) race; use the winner
    }
    return *fl;
  }
};

}  // namespace deep::net

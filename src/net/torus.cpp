#include "net/torus.hpp"

#include <algorithm>
#include <cmath>

namespace deep::net {

TorusFabric::TorusFabric(sim::Engine& engine, std::string name,
                         TorusParams params)
    : Fabric(engine, std::move(name)), params_(params), rng_(params.seed) {
  for (int d = 0; d < 3; ++d)
    DEEP_EXPECT(params_.dims[d] >= 1, "TorusFabric: dims must be >= 1");
  DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
              "TorusFabric: bandwidth must be positive");
  DEEP_EXPECT(params_.packet_bytes > 0, "TorusFabric: packet size must be > 0");
  DEEP_EXPECT(params_.packet_error_rate >= 0.0 && params_.packet_error_rate < 1.0,
              "TorusFabric: packet error rate outside [0,1)");
}

int TorusFabric::linear(TorusCoord c) const {
  return (c.z * params_.dims[1] + c.y) * params_.dims[0] + c.x;
}

TorusFabric::LinkKey TorusFabric::pack(TorusCoord c, int channel) const {
  return LinkKey{static_cast<std::int64_t>(linear(c)) * 16 + channel};
}

Nic& TorusFabric::attach(hw::NodeId node) {
  const int capacity = params_.dims[0] * params_.dims[1] * params_.dims[2];
  DEEP_EXPECT(next_linear_ < capacity, "TorusFabric::attach: torus is full");
  const int lin = next_linear_++;
  TorusCoord c;
  c.x = lin % params_.dims[0];
  c.y = (lin / params_.dims[0]) % params_.dims[1];
  c.z = lin / (params_.dims[0] * params_.dims[1]);
  return attach_at(node, c);
}

Nic& TorusFabric::attach_at(hw::NodeId node, TorusCoord coord) {
  DEEP_EXPECT(coord.x >= 0 && coord.x < params_.dims[0] && coord.y >= 0 &&
                  coord.y < params_.dims[1] && coord.z >= 0 &&
                  coord.z < params_.dims[2],
              "TorusFabric::attach_at: coordinate outside torus");
  DEEP_EXPECT(!by_linear_.contains(linear(coord)),
              "TorusFabric::attach_at: coordinate already occupied");
  Nic& nic = Fabric::attach(node);
  coords_[node] = coord;
  by_linear_[linear(coord)] = node;
  return nic;
}

TorusCoord TorusFabric::coord_of(hw::NodeId node) const {
  auto it = coords_.find(node);
  DEEP_EXPECT(it != coords_.end(), "TorusFabric::coord_of: node not attached");
  return it->second;
}

int TorusFabric::displacement(int from, int to, int dim) const {
  const int n = params_.dims[dim];
  int d = (to - from) % n;
  if (d < 0) d += n;          // forward distance in [0, n)
  if (d * 2 > n) d -= n;      // wrap backwards if shorter
  // Ties (d*2 == n) route in the positive direction.
  return d;
}

int TorusFabric::hops(TorusCoord a, TorusCoord b) const {
  int total = 0;
  total += std::abs(displacement(a.x, b.x, 0));
  total += std::abs(displacement(a.y, b.y, 1));
  total += std::abs(displacement(a.z, b.z, 2));
  return total;
}

int TorusFabric::hops(hw::NodeId src, hw::NodeId dst) const {
  return hops(coord_of(src), coord_of(dst));
}

std::vector<TorusFabric::LinkKey> TorusFabric::route(TorusCoord a,
                                                     TorusCoord b) const {
  std::vector<LinkKey> links;
  TorusCoord cur = a;
  const auto walk = [&](int dim) {
    int* cur_axis = dim == 0 ? &cur.x : dim == 1 ? &cur.y : &cur.z;
    const int target = dim == 0 ? b.x : dim == 1 ? b.y : b.z;
    int d = displacement(*cur_axis, target, dim);
    const bool positive = d > 0;
    const int n = params_.dims[dim];
    while (d != 0) {
      links.push_back(dim_link(cur, dim, positive));
      *cur_axis = ((*cur_axis + (positive ? 1 : -1)) % n + n) % n;
      d += positive ? -1 : 1;
    }
  };
  walk(0);
  walk(1);
  walk(2);
  return links;
}

bool TorusFabric::route_up(hw::NodeId src, hw::NodeId dst) const {
  TorusCoord cur = coord_of(src);
  const TorusCoord b = coord_of(dst);
  const auto node_at = [this](const TorusCoord& c) {
    auto it = by_linear_.find(linear(c));
    return it == by_linear_.end() ? hw::kInvalidNode : it->second;
  };
  const auto walk = [&](int dim) {
    int* cur_axis = dim == 0 ? &cur.x : dim == 1 ? &cur.y : &cur.z;
    const int target = dim == 0 ? b.x : dim == 1 ? b.y : b.z;
    int d = displacement(*cur_axis, target, dim);
    const bool positive = d > 0;
    const int n = params_.dims[dim];
    while (d != 0) {
      const hw::NodeId from = node_at(cur);
      *cur_axis = ((*cur_axis + (positive ? 1 : -1)) % n + n) % n;
      const hw::NodeId to = node_at(cur);
      if (from != hw::kInvalidNode && to != hw::kInvalidNode &&
          !link_up(from, to))
        return false;
      d += positive ? -1 : 1;
    }
    return true;
  };
  return walk(0) && walk(1) && walk(2);
}

sim::Duration TorusFabric::retransmission_penalty(std::int64_t bytes,
                                                  int nlinks) {
  if (params_.packet_error_rate <= 0.0 || bytes <= 0 || nlinks == 0) return {};
  const std::int64_t packets =
      (bytes + params_.packet_bytes - 1) / params_.packet_bytes;
  // Each packet traverses each link once; every traversal may require a
  // retransmission (geometric retries are folded to one expected resend —
  // PER is small in all experiments).
  const std::int64_t trials = packets * nlinks;
  std::int64_t resends = 0;
  if (trials <= 256) {
    for (std::int64_t i = 0; i < trials; ++i)
      resends += rng_.chance(params_.packet_error_rate) ? 1 : 0;
  } else {
    // Gaussian approximation of the binomial for large transfers, clamped.
    const double mean = static_cast<double>(trials) * params_.packet_error_rate;
    const double sd = std::sqrt(mean * (1.0 - params_.packet_error_rate));
    const double u1 = std::max(rng_.uniform(), 1e-12);
    const double u2 = rng_.uniform();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    resends = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(mean + sd * gauss)));
  }
  if (resends == 0) return {};
  retransmissions_ += resends;
  ++affected_messages_;
  const std::int64_t min_packet = std::min(params_.packet_bytes, bytes);
  return (params_.hop_latency + serialisation(min_packet)) *
         static_cast<std::int64_t>(resends);
}

void TorusFabric::send(Message msg, Service svc) {
  DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
              "TorusFabric::send: endpoint not attached");
  DEEP_EXPECT(msg.size_bytes >= 0, "TorusFabric::send: negative size");
  if (faulted(msg)) return;
  const TorusCoord a = coord_of(msg.src);
  const TorusCoord b = coord_of(msg.dst);

  const sim::Duration engine_overhead =
      svc == Service::Bulk ? params_.rma_setup : params_.velo_injection;
  const sim::Duration wire = serialisation(msg.size_bytes);

  if (svc == Service::Control) {
    // Priority virtual channel (VELO-class): pays engine + per-hop latency
    // but does not queue on, or reserve, the data links.
    const int nhops = hops(a, b) + 2;  // inject + route + eject
    deliver_at(engine_->now() + engine_overhead + params_.hop_latency * nhops +
                   wire + params_.ejection,
               std::move(msg));
    return;
  }

  // Head traversal: injection link, route links, ejection link.
  std::vector<LinkKey> links;
  links.push_back(inject_link(a));
  if (!(a == b)) {
    auto path = route(a, b);
    links.insert(links.end(), path.begin(), path.end());
  }
  links.push_back(eject_link(b));

  // The engine (VELO or RMA) is busy for the setup overhead of each
  // message, which is what bounds the NIC's message rate.
  const LinkKey engine_key =
      engine_link(a, svc == Service::Bulk ? Service::Bulk : Service::Small);
  sim::TimePoint head = engine_->now();
  if (auto it = link_free_.find(engine_key); it != link_free_.end())
    head = std::max(head, it->second);
  head = head + engine_overhead;
  link_free_[engine_key] = head;
  for (const LinkKey& link : links) {
    auto it = link_free_.find(link);
    if (it != link_free_.end()) head = std::max(head, it->second);
    head = head + params_.hop_latency;
  }
  sim::TimePoint tail = head + wire;
  tail = tail +
         retransmission_penalty(msg.size_bytes, static_cast<int>(links.size()));
  for (const LinkKey& link : links) link_free_[link] = tail;

  deliver_at(tail + params_.ejection, std::move(msg));
}

}  // namespace deep::net

#include "net/torus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/pool.hpp"

namespace deep::net {

TorusFabric::TorusFabric(sim::Engine& engine, std::string name,
                         TorusParams params)
    : Fabric(engine, std::move(name)), params_(params) {
  for (int d = 0; d < 3; ++d)
    DEEP_EXPECT(params_.dims[d] >= 1, "TorusFabric: dims must be >= 1");
  DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
              "TorusFabric: bandwidth must be positive");
  DEEP_EXPECT(params_.packet_bytes > 0, "TorusFabric: packet size must be > 0");
  DEEP_EXPECT(params_.packet_error_rate >= 0.0 && params_.packet_error_rate < 1.0,
              "TorusFabric: packet error rate outside [0,1)");
  capacity_ = params_.dims[0] * params_.dims[1] * params_.dims[2];
  coord_at_.resize(capacity_);
  for (int lin = 0; lin < capacity_; ++lin) {
    coord_at_[lin].x = lin % params_.dims[0];
    coord_at_[lin].y = (lin / params_.dims[0]) % params_.dims[1];
    coord_at_[lin].z = lin / (params_.dims[0] * params_.dims[1]);
  }
  node_at_.assign(capacity_, hw::kInvalidNode);
  // Default TimePoint{} is the epoch: max(now, epoch) == now, so an untouched
  // slot behaves exactly like an absent entry in the old hash map.
  link_free_.assign(static_cast<std::size_t>(capacity_) * kChannelsPerRouter,
                    sim::TimePoint{});
  // Lane 0 (serial runs) reproduces the historical single-RNG stream exactly;
  // other lanes derive theirs from the seed and the lane index, so error
  // sampling is deterministic per partitioning regardless of worker count.
  lanes_.resize(util::kMaxLanes);
  for (std::size_t w = 0; w < lanes_.size(); ++w)
    lanes_[w].rng = util::Rng(
        w == 0 ? params_.seed
               : params_.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(w)));
  if (auto* metrics = engine.metrics()) {
    m_hops_ = metrics->counter("net." + this->name() + ".hops");
    m_retransmissions_ =
        metrics->counter("net." + this->name() + ".retransmissions");
    m_link_busy_ps_ = metrics->counter("net." + this->name() + ".link_busy_ps");
    m_head_wait_ns_ =
        metrics->histogram("net." + this->name() + ".head_wait_ns");
  }
}

int TorusFabric::linear(TorusCoord c) const {
  return (c.z * params_.dims[1] + c.y) * params_.dims[0] + c.x;
}

Nic& TorusFabric::attach(hw::NodeId node) {
  DEEP_EXPECT(next_linear_ < capacity_, "TorusFabric::attach: torus is full");
  return attach_at(node, coord_at_[next_linear_++]);
}

Nic& TorusFabric::attach_at(hw::NodeId node, TorusCoord coord) {
  DEEP_EXPECT(coord.x >= 0 && coord.x < params_.dims[0] && coord.y >= 0 &&
                  coord.y < params_.dims[1] && coord.z >= 0 &&
                  coord.z < params_.dims[2],
              "TorusFabric::attach_at: coordinate outside torus");
  const int lin = linear(coord);
  DEEP_EXPECT(node_at_[lin] == hw::kInvalidNode,
              "TorusFabric::attach_at: coordinate already occupied");
  Nic& nic = Fabric::attach(node);
  node_at_[lin] = node;
  linear_of_[node] = lin;
  partition_dirty_.store(true, std::memory_order_release);
  return nic;
}

int TorusFabric::linear_of(hw::NodeId node) const {
  auto it = linear_of_.find(node);
  DEEP_EXPECT(it != linear_of_.end(), "TorusFabric: node not attached");
  return it->second;
}

TorusCoord TorusFabric::coord_of(hw::NodeId node) const {
  return coord_at_[linear_of(node)];
}

int TorusFabric::displacement(int from, int to, int dim) const {
  const int n = params_.dims[dim];
  int d = (to - from) % n;
  if (d < 0) d += n;          // forward distance in [0, n)
  if (d * 2 > n) d -= n;      // wrap backwards if shorter
  // Ties (d*2 == n) route in the positive direction.
  return d;
}

int TorusFabric::hops(TorusCoord a, TorusCoord b) const {
  int total = 0;
  total += std::abs(displacement(a.x, b.x, 0));
  total += std::abs(displacement(a.y, b.y, 1));
  total += std::abs(displacement(a.z, b.z, 2));
  return total;
}

int TorusFabric::hops(hw::NodeId src, hw::NodeId dst) const {
  return hops(coord_of(src), coord_of(dst));
}

const TorusFabric::RouteEntry& TorusFabric::route_entry(int src_lin,
                                                        int dst_lin) const {
  LaneState& lane = lane_state();
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src_lin))
                             << 32) |
                            static_cast<std::uint32_t>(dst_lin);
  auto [it, inserted] = lane.route_memo.try_emplace(key);
  if (!inserted) return it->second;

  // Cold path: build the dimension-ordered route once, append its packed
  // link indices to the lane's arena.  The walk is the exact algorithm the
  // per-message route() used before memoisation, so booked links (and
  // therefore traces) are bit-identical.
  RouteEntry& entry = it->second;
  entry.first = static_cast<std::uint32_t>(lane.route_links.size());
  TorusCoord cur = coord_at_[src_lin];
  const TorusCoord b = coord_at_[dst_lin];
  const auto walk = [&](int dim) {
    int* cur_axis = dim == 0 ? &cur.x : dim == 1 ? &cur.y : &cur.z;
    const int target = dim == 0 ? b.x : dim == 1 ? b.y : b.z;
    int d = displacement(*cur_axis, target, dim);
    const bool positive = d > 0;
    const int n = params_.dims[dim];
    while (d != 0) {
      lane.route_links.push_back(dim_link(linear(cur), dim, positive));
      *cur_axis = ((*cur_axis + (positive ? 1 : -1)) % n + n) % n;
      d += positive ? -1 : 1;
    }
  };
  walk(0);
  walk(1);
  walk(2);
  entry.count =
      static_cast<std::uint32_t>(lane.route_links.size()) - entry.first;
  return entry;
}

std::vector<int> TorusFabric::route_linears(hw::NodeId src,
                                            hw::NodeId dst) const {
  const int src_lin = linear_of(src);
  const int dst_lin = linear_of(dst);
  const RouteEntry& entry = route_entry(src_lin, dst_lin);
  const LaneState& lane = lane_state();
  std::vector<int> linears;
  linears.reserve(entry.count + 1);
  linears.push_back(src_lin);
  // Each arena entry is packed from the router the hop *leaves*; the route's
  // final router is the destination itself.
  for (std::uint32_t i = entry.first + 1; i < entry.first + entry.count; ++i)
    linears.push_back(
        static_cast<int>(lane.route_links[i] / kChannelsPerRouter));
  if (entry.count > 0) linears.push_back(dst_lin);
  return linears;
}

bool TorusFabric::route_up(hw::NodeId src, hw::NodeId dst) const {
  const int src_lin = linear_of(src);
  const int dst_lin = linear_of(dst);
  const RouteEntry& entry = route_entry(src_lin, dst_lin);
  const LaneState& lane = lane_state();
  // The route is memoised; the link-state consultation is live, per hop.
  for (std::uint32_t i = entry.first; i < entry.first + entry.count; ++i) {
    const int from_lin =
        static_cast<int>(lane.route_links[i] / kChannelsPerRouter);
    const int to_lin =
        i + 1 < entry.first + entry.count
            ? static_cast<int>(lane.route_links[i + 1] / kChannelsPerRouter)
            : dst_lin;
    const hw::NodeId from = node_at_[from_lin];
    const hw::NodeId to = node_at_[to_lin];
    if (from != hw::kInvalidNode && to != hw::kInvalidNode && !link_up(from, to))
      return false;
  }
  return true;
}

std::int64_t TorusFabric::retransmissions() const {
  std::int64_t total = 0;
  for (const LaneState& lane : lanes_) total += lane.retransmissions;
  return total;
}

std::int64_t TorusFabric::affected_messages() const {
  std::int64_t total = 0;
  for (const LaneState& lane : lanes_) total += lane.affected_messages;
  return total;
}

std::vector<std::pair<hw::NodeId, hw::NodeId>> TorusFabric::topology_edges()
    const {
  std::vector<int> attached;
  attached.reserve(linear_of_.size());
  for (int lin = 0; lin < capacity_; ++lin)
    if (node_at_[lin] != hw::kInvalidNode) attached.push_back(lin);
  std::vector<std::pair<hw::NodeId, hw::NodeId>> edges;
  for (std::size_t i = 0; i < attached.size(); ++i)
    for (std::size_t j = i + 1; j < attached.size(); ++j)
      if (hops(coord_at_[attached[i]], coord_at_[attached[j]]) == 1)
        edges.emplace_back(node_at_[attached[i]], node_at_[attached[j]]);
  return edges;
}

void TorusFabric::refresh_partitions() const {
  // Attached coordinates take their node's partition.
  coord_part_.assign(capacity_, 0);
  std::vector<int> attached;
  attached.reserve(linear_of_.size());
  for (int lin = 0; lin < capacity_; ++lin)
    if (node_at_[lin] != hw::kInvalidNode) {
      coord_part_[lin] = partition_of(node_at_[lin]);
      attached.push_back(lin);
    }
  // Unattached routers adopt the nearest attached coordinate's partition
  // (ties break to the lowest linear index — attached is in linear order),
  // so every directed link has exactly one owner and endpoint-segmented
  // booking covers the whole route table.
  for (int lin = 0; lin < capacity_; ++lin) {
    if (node_at_[lin] != hw::kInvalidNode) continue;
    int best_h = std::numeric_limits<int>::max();
    int best_lin = -1;
    for (int alin : attached) {
      const int h = hops(coord_at_[lin], coord_at_[alin]);
      if (h < best_h) {
        best_h = h;
        best_lin = alin;
      }
    }
    if (best_lin >= 0) coord_part_[lin] = coord_part_[best_lin];
  }
  // Pair distance: minimum hop count between the two partitions' coordinate
  // regions.  Using regions (not just attached nodes) keeps the bound
  // conservative: fill coordinates only enlarge a region, never shrink the
  // distance below what an actual route can cover per hop.
  const std::uint32_t nparts = engine_->partitions();
  pair_hops_.assign(static_cast<std::size_t>(nparts) * nparts, -1);
  for (int a = 0; a < capacity_; ++a)
    for (int b = 0; b < capacity_; ++b) {
      const std::uint32_t pa = coord_part_[a];
      const std::uint32_t pb = coord_part_[b];
      if (pa == pb || pa >= nparts || pb >= nparts) continue;
      const int h = hops(coord_at_[a], coord_at_[b]);
      std::int64_t& slot = pair_hops_[static_cast<std::size_t>(pa) * nparts + pb];
      if (slot < 0 || h < slot) slot = h;
    }
  partition_dirty_.store(false, std::memory_order_release);
}

void TorusFabric::ensure_partitions() const {
  if (!partition_dirty_.load(std::memory_order_acquire)) return;
  // Normally refreshed on the main thread (install_pair_lookahead queries
  // lookahead() before the run); the mutex covers a stray first query from
  // inside a window.
  std::lock_guard<std::mutex> lock(partition_mu_);
  if (partition_dirty_.load(std::memory_order_relaxed)) refresh_partitions();
}

std::uint32_t TorusFabric::coord_partition(TorusCoord c) const {
  DEEP_EXPECT(c.x >= 0 && c.x < params_.dims[0] && c.y >= 0 &&
                  c.y < params_.dims[1] && c.z >= 0 && c.z < params_.dims[2],
              "TorusFabric::coord_partition: coordinate outside torus");
  if (!partitioned()) return 0;
  ensure_partitions();
  return coord_part_[linear(c)];
}

sim::Duration TorusFabric::lookahead(std::uint32_t src_part,
                                     std::uint32_t dst_part) const {
  if (!partitioned()) return Fabric::lookahead(src_part, dst_part);
  if (src_part == dst_part) return sim::kUnconstrainedLookahead;
  ensure_partitions();
  const std::uint32_t nparts = engine_->partitions();
  if (src_part >= nparts || dst_part >= nparts)
    return sim::kUnconstrainedLookahead;
  const std::int64_t d =
      pair_hops_[static_cast<std::size_t>(src_part) * nparts + dst_part];
  if (d < 0) return sim::kUnconstrainedLookahead;
  // Cheapest cross-partition delivery: engine setup, the injection hop, and
  // one hop per link separating the regions.  Every send/continuation pays
  // at least this much (see send() and deliver_cross()).
  return engine_min() + params_.hop_latency * static_cast<std::int64_t>(d + 1);
}

sim::Duration TorusFabric::retransmission_penalty(std::int64_t bytes,
                                                  int nlinks) {
  if (params_.packet_error_rate <= 0.0 || bytes <= 0 || nlinks == 0) return {};
  LaneState& lane = lane_state();
  const std::int64_t packets =
      (bytes + params_.packet_bytes - 1) / params_.packet_bytes;
  // Each packet traverses each link once; every traversal may require a
  // retransmission (geometric retries are folded to one expected resend —
  // PER is small in all experiments).
  const std::int64_t trials = packets * nlinks;
  std::int64_t resends = 0;
  if (trials <= 256) {
    for (std::int64_t i = 0; i < trials; ++i)
      resends += lane.rng.chance(params_.packet_error_rate) ? 1 : 0;
  } else {
    // Gaussian approximation of the binomial for large transfers, clamped.
    const double mean = static_cast<double>(trials) * params_.packet_error_rate;
    const double sd = std::sqrt(mean * (1.0 - params_.packet_error_rate));
    const double u1 = std::max(lane.rng.uniform(), 1e-12);
    const double u2 = lane.rng.uniform();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    resends = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(mean + sd * gauss)));
  }
  if (resends == 0) return {};
  lane.retransmissions += resends;
  ++lane.affected_messages;
  m_retransmissions_.add(resends);
  const std::int64_t min_packet = std::min(params_.packet_bytes, bytes);
  return (params_.hop_latency + serialisation(min_packet)) *
         static_cast<std::int64_t>(resends);
}

void TorusFabric::send(Message msg, Service svc) {
  DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
              "TorusFabric::send: endpoint not attached");
  DEEP_EXPECT(msg.size_bytes >= 0, "TorusFabric::send: negative size");
  if (faulted(msg)) return;
  const int src_lin = linear_of(msg.src);
  const int dst_lin = linear_of(msg.dst);
  const RouteEntry& route = route_entry(src_lin, dst_lin);
  LaneState& lane = lane_state();

  const sim::Duration engine_overhead =
      svc == Service::Bulk ? params_.rma_setup : params_.velo_injection;
  const sim::Duration wire = serialisation(msg.size_bytes);

  if (svc == Service::Control) {
    // Priority virtual channel (VELO-class): pays engine + per-hop latency
    // but does not queue on, or reserve, the data links.  Purely analytic,
    // so it is partitioning-independent; the base deliver_at() handles the
    // cross-partition hop when the destination lives elsewhere.
    const int nhops = static_cast<int>(route.count) + 2;  // inject+route+eject
    m_hops_.add(route.count);
    deliver_at(engine_->now() + engine_overhead + params_.hop_latency * nhops +
                   wire + params_.ejection,
               std::move(msg));
    return;
  }

  // Head traversal: injection link, memoised route links, ejection link.
  // All link state is a flat-array read/write; nothing allocates.
  const std::int64_t inject = pack(src_lin, kChannelInject);
  const std::int64_t eject = pack(dst_lin, kChannelEject);

  // The engine (VELO or RMA) is busy for the setup overhead of each
  // message, which is what bounds the NIC's message rate.
  const std::int64_t engine_key =
      pack(src_lin, svc == Service::Bulk ? kChannelRma : kChannelVelo);

  if (!partitioned()) {
    // Serial path: the exact historical algorithm (bit-identical traces).
    sim::TimePoint head = engine_->now();
    head = std::max(head, link_free_[engine_key]);
    head = head + engine_overhead;
    link_free_[engine_key] = head;
    const auto traverse = [&](std::int64_t link) {
      head = std::max(head, link_free_[link]);
      head = head + params_.hop_latency;
    };
    traverse(inject);
    for (std::uint32_t i = route.first; i < route.first + route.count; ++i)
      traverse(lane.route_links[i]);
    traverse(eject);

    // Bookkeeping for the observability layer: dimension hops, head latency
    // (queueing included), and wire occupancy summed over every held link —
    // the report divides the latter by elapsed time for utilisation.
    m_hops_.add(route.count);
    m_head_wait_ns_.record((head - engine_->now()).ps / 1000);
    m_link_busy_ps_.add(wire.ps * (static_cast<std::int64_t>(route.count) + 2));

    sim::TimePoint tail = head + wire;
    tail = tail + retransmission_penalty(msg.size_bytes,
                                         static_cast<int>(route.count) + 2);
    link_free_[inject] = tail;
    for (std::uint32_t i = route.first; i < route.first + route.count; ++i)
      link_free_[lane.route_links[i]] = tail;
    link_free_[eject] = tail;

    deliver_at(tail + params_.ejection, std::move(msg));
    return;
  }

  // Partitioned: endpoint-segmented contention model.  A link is owned by
  // the partition of its router's coordinate and only its owner ever touches
  // its booking.  The sender books the engine channel, the injection link
  // and the contiguous source-owned route prefix; the middle of the route is
  // analytic (per-hop latency, no booking — foreign contention is
  // approximated away, see docs/parallel_engine.md); the destination books
  // the contiguous destination-owned suffix and the ejection link from a
  // continuation on its own partition.  Sends must execute on the partition
  // owning the source coordinate (every caller injects from its own node) —
  // Engine::schedule_on enforces the resulting safety condition.
  ensure_partitions();
  const std::uint32_t src_part = coord_part_[src_lin];
  const std::uint32_t dst_part = coord_part_[dst_lin];

  std::uint32_t prefix_end = 0;
  while (prefix_end < route.count &&
         coord_part_[lane.route_links[route.first + prefix_end] /
                     kChannelsPerRouter] == src_part)
    ++prefix_end;
  std::uint32_t suffix_start = route.count;
  while (suffix_start > prefix_end &&
         coord_part_[lane.route_links[route.first + suffix_start - 1] /
                     kChannelsPerRouter] == dst_part)
    --suffix_start;

  sim::TimePoint head = engine_->now();
  head = std::max(head, link_free_[engine_key]);
  head = head + engine_overhead;
  link_free_[engine_key] = head;
  const auto traverse = [&](std::int64_t link) {
    head = std::max(head, link_free_[link]);
    head = head + params_.hop_latency;
  };
  traverse(inject);
  for (std::uint32_t i = 0; i < prefix_end; ++i)
    traverse(lane.route_links[route.first + i]);
  const sim::TimePoint prefix_head = head;
  head = head + params_.hop_latency *
                    static_cast<std::int64_t>(suffix_start - prefix_end);

  m_hops_.add(route.count);

  if (src_part == dst_part) {
    // Same partition: finish inline — suffix traversal, ejection, booking.
    for (std::uint32_t i = suffix_start; i < route.count; ++i)
      traverse(lane.route_links[route.first + i]);
    traverse(eject);
    m_head_wait_ns_.record((head - engine_->now()).ps / 1000);
    const std::int64_t booked =
        static_cast<std::int64_t>(prefix_end) + (route.count - suffix_start) + 2;
    m_link_busy_ps_.add(wire.ps * booked);
    sim::TimePoint tail = head + wire;
    tail = tail + retransmission_penalty(msg.size_bytes,
                                         static_cast<int>(route.count) + 2);
    link_free_[inject] = tail;
    for (std::uint32_t i = 0; i < prefix_end; ++i)
      link_free_[lane.route_links[route.first + i]] = tail;
    for (std::uint32_t i = suffix_start; i < route.count; ++i)
      link_free_[lane.route_links[route.first + i]] = tail;
    link_free_[eject] = tail;
    deliver_at(tail + params_.ejection, std::move(msg));
    return;
  }

  // Cross partition: hold the source-side links until the tail clears them,
  // then continue on the destination partition at the analytic head arrival.
  // `head` here is >= now + engine_min + hop_latency * (1 + suffix_start)
  // and suffix_start >= the region distance D(src_part, dst_part), so the
  // continuation always lands at or beyond the destination's safe window
  // (the per-pair lookahead bound).
  const sim::TimePoint prefix_tail = prefix_head + wire;
  link_free_[inject] = prefix_tail;
  for (std::uint32_t i = 0; i < prefix_end; ++i)
    link_free_[lane.route_links[route.first + i]] = prefix_tail;
  m_head_wait_ns_.record((head - engine_->now()).ps / 1000);
  m_link_busy_ps_.add(wire.ps * (static_cast<std::int64_t>(prefix_end) + 1));
  engine_->schedule_on(
      dst_part, head,
      [this, src_lin, dst_lin, suffix_start,
       m = PooledMessage(std::move(msg))]() mutable {
        deliver_cross(m.take(), src_lin, dst_lin, suffix_start);
      });
}

void TorusFabric::deliver_cross(Message msg, int src_lin, int dst_lin,
                                std::uint32_t suffix_off) {
  // Running as an event on the destination partition: the route lookup and
  // the retransmission sampling use that partition's lane state, and every
  // link booked below is owned by this partition.
  const RouteEntry& route = route_entry(src_lin, dst_lin);
  LaneState& lane = lane_state();
  const sim::Duration wire = serialisation(msg.size_bytes);
  const std::int64_t eject = pack(dst_lin, kChannelEject);

  sim::TimePoint head = engine_->now();
  const auto traverse = [&](std::int64_t link) {
    head = std::max(head, link_free_[link]);
    head = head + params_.hop_latency;
  };
  for (std::uint32_t i = suffix_off; i < route.count; ++i)
    traverse(lane.route_links[route.first + i]);
  traverse(eject);

  const std::int64_t booked =
      static_cast<std::int64_t>(route.count - suffix_off) + 1;
  m_link_busy_ps_.add(wire.ps * booked);

  sim::TimePoint tail = head + wire;
  tail = tail + retransmission_penalty(msg.size_bytes,
                                       static_cast<int>(booked));
  for (std::uint32_t i = suffix_off; i < route.count; ++i)
    link_free_[lane.route_links[route.first + i]] = tail;
  link_free_[eject] = tail;

  deliver_at(tail + params_.ejection, std::move(msg));
}

}  // namespace deep::net

#include "net/torus.hpp"

#include <algorithm>
#include <cmath>

namespace deep::net {

TorusFabric::TorusFabric(sim::Engine& engine, std::string name,
                         TorusParams params)
    : Fabric(engine, std::move(name)), params_(params), rng_(params.seed) {
  for (int d = 0; d < 3; ++d)
    DEEP_EXPECT(params_.dims[d] >= 1, "TorusFabric: dims must be >= 1");
  DEEP_EXPECT(params_.bandwidth_bytes_per_sec > 0,
              "TorusFabric: bandwidth must be positive");
  DEEP_EXPECT(params_.packet_bytes > 0, "TorusFabric: packet size must be > 0");
  DEEP_EXPECT(params_.packet_error_rate >= 0.0 && params_.packet_error_rate < 1.0,
              "TorusFabric: packet error rate outside [0,1)");
  capacity_ = params_.dims[0] * params_.dims[1] * params_.dims[2];
  coord_at_.resize(capacity_);
  for (int lin = 0; lin < capacity_; ++lin) {
    coord_at_[lin].x = lin % params_.dims[0];
    coord_at_[lin].y = (lin / params_.dims[0]) % params_.dims[1];
    coord_at_[lin].z = lin / (params_.dims[0] * params_.dims[1]);
  }
  node_at_.assign(capacity_, hw::kInvalidNode);
  // Default TimePoint{} is the epoch: max(now, epoch) == now, so an untouched
  // slot behaves exactly like an absent entry in the old hash map.
  link_free_.assign(static_cast<std::size_t>(capacity_) * kChannelsPerRouter,
                    sim::TimePoint{});
  if (auto* metrics = engine.metrics()) {
    m_hops_ = metrics->counter("net." + this->name() + ".hops");
    m_retransmissions_ =
        metrics->counter("net." + this->name() + ".retransmissions");
    m_link_busy_ps_ = metrics->counter("net." + this->name() + ".link_busy_ps");
    m_head_wait_ns_ =
        metrics->histogram("net." + this->name() + ".head_wait_ns");
  }
}

int TorusFabric::linear(TorusCoord c) const {
  return (c.z * params_.dims[1] + c.y) * params_.dims[0] + c.x;
}

Nic& TorusFabric::attach(hw::NodeId node) {
  DEEP_EXPECT(next_linear_ < capacity_, "TorusFabric::attach: torus is full");
  return attach_at(node, coord_at_[next_linear_++]);
}

Nic& TorusFabric::attach_at(hw::NodeId node, TorusCoord coord) {
  DEEP_EXPECT(coord.x >= 0 && coord.x < params_.dims[0] && coord.y >= 0 &&
                  coord.y < params_.dims[1] && coord.z >= 0 &&
                  coord.z < params_.dims[2],
              "TorusFabric::attach_at: coordinate outside torus");
  const int lin = linear(coord);
  DEEP_EXPECT(node_at_[lin] == hw::kInvalidNode,
              "TorusFabric::attach_at: coordinate already occupied");
  Nic& nic = Fabric::attach(node);
  node_at_[lin] = node;
  linear_of_[node] = lin;
  return nic;
}

int TorusFabric::linear_of(hw::NodeId node) const {
  auto it = linear_of_.find(node);
  DEEP_EXPECT(it != linear_of_.end(), "TorusFabric: node not attached");
  return it->second;
}

TorusCoord TorusFabric::coord_of(hw::NodeId node) const {
  return coord_at_[linear_of(node)];
}

int TorusFabric::displacement(int from, int to, int dim) const {
  const int n = params_.dims[dim];
  int d = (to - from) % n;
  if (d < 0) d += n;          // forward distance in [0, n)
  if (d * 2 > n) d -= n;      // wrap backwards if shorter
  // Ties (d*2 == n) route in the positive direction.
  return d;
}

int TorusFabric::hops(TorusCoord a, TorusCoord b) const {
  int total = 0;
  total += std::abs(displacement(a.x, b.x, 0));
  total += std::abs(displacement(a.y, b.y, 1));
  total += std::abs(displacement(a.z, b.z, 2));
  return total;
}

int TorusFabric::hops(hw::NodeId src, hw::NodeId dst) const {
  return hops(coord_of(src), coord_of(dst));
}

const TorusFabric::RouteEntry& TorusFabric::route_entry(int src_lin,
                                                        int dst_lin) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src_lin))
                             << 32) |
                            static_cast<std::uint32_t>(dst_lin);
  auto [it, inserted] = route_memo_.try_emplace(key);
  if (!inserted) return it->second;

  // Cold path: build the dimension-ordered route once, append its packed
  // link indices to the shared arena.  The walk is the exact algorithm the
  // per-message route() used before memoisation, so booked links (and
  // therefore traces) are bit-identical.
  RouteEntry& entry = it->second;
  entry.first = static_cast<std::uint32_t>(route_links_.size());
  TorusCoord cur = coord_at_[src_lin];
  const TorusCoord b = coord_at_[dst_lin];
  const auto walk = [&](int dim) {
    int* cur_axis = dim == 0 ? &cur.x : dim == 1 ? &cur.y : &cur.z;
    const int target = dim == 0 ? b.x : dim == 1 ? b.y : b.z;
    int d = displacement(*cur_axis, target, dim);
    const bool positive = d > 0;
    const int n = params_.dims[dim];
    while (d != 0) {
      route_links_.push_back(dim_link(linear(cur), dim, positive));
      *cur_axis = ((*cur_axis + (positive ? 1 : -1)) % n + n) % n;
      d += positive ? -1 : 1;
    }
  };
  walk(0);
  walk(1);
  walk(2);
  entry.count = static_cast<std::uint32_t>(route_links_.size()) - entry.first;
  return entry;
}

std::vector<int> TorusFabric::route_linears(hw::NodeId src,
                                            hw::NodeId dst) const {
  const int src_lin = linear_of(src);
  const int dst_lin = linear_of(dst);
  const RouteEntry& entry = route_entry(src_lin, dst_lin);
  std::vector<int> linears;
  linears.reserve(entry.count + 1);
  linears.push_back(src_lin);
  // Each arena entry is packed from the router the hop *leaves*; the route's
  // final router is the destination itself.
  for (std::uint32_t i = entry.first + 1; i < entry.first + entry.count; ++i)
    linears.push_back(static_cast<int>(route_links_[i] / kChannelsPerRouter));
  if (entry.count > 0) linears.push_back(dst_lin);
  return linears;
}

bool TorusFabric::route_up(hw::NodeId src, hw::NodeId dst) const {
  const int src_lin = linear_of(src);
  const int dst_lin = linear_of(dst);
  const RouteEntry& entry = route_entry(src_lin, dst_lin);
  // The route is memoised; the link-state consultation is live, per hop.
  for (std::uint32_t i = entry.first; i < entry.first + entry.count; ++i) {
    const int from_lin =
        static_cast<int>(route_links_[i] / kChannelsPerRouter);
    const int to_lin =
        i + 1 < entry.first + entry.count
            ? static_cast<int>(route_links_[i + 1] / kChannelsPerRouter)
            : dst_lin;
    const hw::NodeId from = node_at_[from_lin];
    const hw::NodeId to = node_at_[to_lin];
    if (from != hw::kInvalidNode && to != hw::kInvalidNode && !link_up(from, to))
      return false;
  }
  return true;
}

sim::Duration TorusFabric::retransmission_penalty(std::int64_t bytes,
                                                  int nlinks) {
  if (params_.packet_error_rate <= 0.0 || bytes <= 0 || nlinks == 0) return {};
  const std::int64_t packets =
      (bytes + params_.packet_bytes - 1) / params_.packet_bytes;
  // Each packet traverses each link once; every traversal may require a
  // retransmission (geometric retries are folded to one expected resend —
  // PER is small in all experiments).
  const std::int64_t trials = packets * nlinks;
  std::int64_t resends = 0;
  if (trials <= 256) {
    for (std::int64_t i = 0; i < trials; ++i)
      resends += rng_.chance(params_.packet_error_rate) ? 1 : 0;
  } else {
    // Gaussian approximation of the binomial for large transfers, clamped.
    const double mean = static_cast<double>(trials) * params_.packet_error_rate;
    const double sd = std::sqrt(mean * (1.0 - params_.packet_error_rate));
    const double u1 = std::max(rng_.uniform(), 1e-12);
    const double u2 = rng_.uniform();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    resends = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(mean + sd * gauss)));
  }
  if (resends == 0) return {};
  retransmissions_ += resends;
  ++affected_messages_;
  m_retransmissions_.add(resends);
  const std::int64_t min_packet = std::min(params_.packet_bytes, bytes);
  return (params_.hop_latency + serialisation(min_packet)) *
         static_cast<std::int64_t>(resends);
}

void TorusFabric::send(Message msg, Service svc) {
  DEEP_EXPECT(attached(msg.src) && attached(msg.dst),
              "TorusFabric::send: endpoint not attached");
  DEEP_EXPECT(msg.size_bytes >= 0, "TorusFabric::send: negative size");
  if (faulted(msg)) return;
  const int src_lin = linear_of(msg.src);
  const int dst_lin = linear_of(msg.dst);
  const RouteEntry& route = route_entry(src_lin, dst_lin);

  const sim::Duration engine_overhead =
      svc == Service::Bulk ? params_.rma_setup : params_.velo_injection;
  const sim::Duration wire = serialisation(msg.size_bytes);

  if (svc == Service::Control) {
    // Priority virtual channel (VELO-class): pays engine + per-hop latency
    // but does not queue on, or reserve, the data links.
    const int nhops = static_cast<int>(route.count) + 2;  // inject+route+eject
    m_hops_.add(route.count);
    deliver_at(engine_->now() + engine_overhead + params_.hop_latency * nhops +
                   wire + params_.ejection,
               std::move(msg));
    return;
  }

  // Head traversal: injection link, memoised route links, ejection link.
  // All link state is a flat-array read/write; nothing allocates.
  const std::int64_t inject = pack(src_lin, kChannelInject);
  const std::int64_t eject = pack(dst_lin, kChannelEject);

  // The engine (VELO or RMA) is busy for the setup overhead of each
  // message, which is what bounds the NIC's message rate.
  const std::int64_t engine_key =
      pack(src_lin, svc == Service::Bulk ? kChannelRma : kChannelVelo);
  sim::TimePoint head = engine_->now();
  head = std::max(head, link_free_[engine_key]);
  head = head + engine_overhead;
  link_free_[engine_key] = head;
  const auto traverse = [&](std::int64_t link) {
    head = std::max(head, link_free_[link]);
    head = head + params_.hop_latency;
  };
  traverse(inject);
  for (std::uint32_t i = route.first; i < route.first + route.count; ++i)
    traverse(route_links_[i]);
  traverse(eject);

  // Bookkeeping for the observability layer: dimension hops, head latency
  // (queueing included), and wire occupancy summed over every held link —
  // the report divides the latter by elapsed time for utilisation.
  m_hops_.add(route.count);
  m_head_wait_ns_.record((head - engine_->now()).ps / 1000);
  m_link_busy_ps_.add(wire.ps * (static_cast<std::int64_t>(route.count) + 2));

  sim::TimePoint tail = head + wire;
  tail = tail + retransmission_penalty(msg.size_bytes,
                                       static_cast<int>(route.count) + 2);
  link_free_[inject] = tail;
  for (std::uint32_t i = route.first; i < route.first + route.count; ++i)
    link_free_[route_links_[i]] = tail;
  link_free_[eject] = tail;

  deliver_at(tail + params_.ejection, std::move(msg));
}

}  // namespace deep::net

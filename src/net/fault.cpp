#include "net/fault.hpp"

namespace deep::net {

FaultPlan::FaultPlan(sim::Engine& engine, FaultSpec spec)
    : engine_(&engine), spec_(std::move(spec)), rng_(spec_.seed) {
  DEEP_EXPECT(spec_.drop_probability >= 0.0 && spec_.drop_probability < 1.0,
              "FaultPlan: drop probability outside [0, 1)");
  for (const LinkEvent& ev : spec_.links)
    DEEP_EXPECT(ev.a != hw::kInvalidNode && ev.b != hw::kInvalidNode,
                "FaultPlan: link event names an invalid node");
  for (const GatewayEvent& ev : spec_.gateways)
    DEEP_EXPECT(ev.gateway != hw::kInvalidNode,
                "FaultPlan: gateway event names an invalid node");
  for (const NodeEvent& ev : spec_.nodes)
    DEEP_EXPECT(ev.node != hw::kInvalidNode,
                "FaultPlan: node event names an invalid node");
}

void FaultPlan::attach(Fabric& fabric) {
  DEEP_EXPECT(!armed_, "FaultPlan::attach: plan already armed");
  if (!spec_.active()) return;  // plan is a no-op; leave the fabric untouched
  fabrics_.push_back(&fabric);
  if (spec_.drop_probability > 0.0) {
    // One shared RNG across fabrics: the engine serialises all sends, so the
    // consumption order — and with it every drop decision — is deterministic.
    fabric.set_drop_fn([this](const Message&) {
      if (!rng_.chance(spec_.drop_probability)) return false;
      ++injected_drops_;
      return true;
    });
  }
}

void FaultPlan::set_gateway_control(GatewayControl control) {
  DEEP_EXPECT(!armed_, "FaultPlan::set_gateway_control: plan already armed");
  gateway_control_ = std::move(control);
}

void FaultPlan::set_node_control(NodeControl control) {
  DEEP_EXPECT(!armed_, "FaultPlan::set_node_control: plan already armed");
  node_control_ = std::move(control);
}

void FaultPlan::arm() {
  DEEP_EXPECT(!armed_, "FaultPlan::arm: already armed");
  armed_ = true;
  if (!spec_.active()) return;
  // Fault state (down links, the shared drop RNG, gateway control) is
  // partition-agnostic shared mutation; an active plan requires the serial
  // engine.  Partitioned chaos coverage runs with workers > 1 at
  // partitions == 1, which exercises the same code paths.
  DEEP_EXPECT(engine_->partitions() == 1,
              "FaultPlan::arm: active fault plans require a single-partition "
              "engine (fault state is shared across partitions)");
  DEEP_EXPECT(spec_.gateways.empty() || gateway_control_,
              "FaultPlan::arm: gateway events without a gateway control hook");
  for (const LinkEvent& ev : spec_.links) {
    engine_->schedule_at(ev.at, [this, ev] {
      // Apply on every attached fabric that knows both nodes (a pair may
      // exist on one side of a bridged system only).
      for (Fabric* fabric : fabrics_) {
        if (fabric->attached(ev.a) && fabric->attached(ev.b))
          fabric->set_link_up(ev.a, ev.b, ev.up);
      }
    });
  }
  for (const GatewayEvent& ev : spec_.gateways) {
    engine_->schedule_at(
        ev.at, [this, ev] { gateway_control_(ev.gateway, ev.up); });
  }
  for (const NodeEvent& ev : spec_.nodes) {
    engine_->schedule_at(ev.at, [this, ev] {
      // Cut (or restore) the node's own fabric access everywhere first, so
      // the control hook observes the final link state.
      for (Fabric* fabric : fabrics_) {
        if (fabric->attached(ev.node))
          fabric->set_link_up(ev.node, ev.node, ev.up);
      }
      if (node_control_) node_control_(ev.node, ev.up);
    });
  }
}

}  // namespace deep::net

#pragma once
// Distributed 2-D Jacobi stencil — the archetypal "highly scalable code
// part" (HSCP) of the paper (slide 9): regular nearest-neighbour
// communication, perfectly suited to the booster's torus.
//
// 1-D row decomposition over the ranks of a communicator: every rank owns
// `rows` interior rows of a global (rows * size) x nx grid plus two halo
// rows.  Each iteration exchanges halos with the up/down neighbours, does a
// real 5-point sweep (the arithmetic is genuine; results are verified in
// tests), and burns the modelled roofline time for the sweep.

#include <vector>

#include "mpi/mpi.hpp"

namespace deep::ckpt {
class Checkpointer;
}

namespace deep::apps {

struct StencilConfig {
  int nx = 256;          // columns (global and local)
  int rows = 64;         // interior rows per rank
  int iterations = 20;
  double top_value = 1.0;  // Dirichlet condition on the global top edge
  /// Checkpoint/restart handle (ProgramEnv::ckpt).  When set, the kernel
  /// restores the last planned checkpoint on entry and saves its full state
  /// (grid + residual tracker) every ckpt->interval() iterations; replay
  /// from a restored state is bit-exact, so a recovered run produces the
  /// same residual/checksum as a fault-free one.  halo_messages counts only
  /// the current attempt's traffic.
  ckpt::Checkpointer* ckpt = nullptr;
};

struct StencilResult {
  double residual = 0.0;      // max |update| of the final iteration (global)
  double checksum = 0.0;      // sum of all interior cells (global)
  std::int64_t halo_messages = 0;  // messages this rank exchanged
};

/// Runs the stencil on `comm`; every rank of the communicator must call it
/// with identical configuration.  Returns the globally-reduced result.
StencilResult run_jacobi(mpi::Mpi& mpi, const mpi::Comm& comm,
                         const StencilConfig& config);

/// Irregular counterpart for the scalability study (slide 9: "most
/// applications are more complex — complicated communication patterns").
/// Every round, ranks exchange `bytes` with a pseudo-random permutation
/// partner (deterministically derived from round+seed, so all ranks agree).
struct IrregularConfig {
  std::int64_t bytes = 64 * 1024;
  int rounds = 20;
  std::uint64_t seed = 1234;
  double flops_per_round = 1e8;  // local work between exchanges
};

void run_irregular_exchange(mpi::Mpi& mpi, const mpi::Comm& comm,
                            const IrregularConfig& config);

}  // namespace deep::apps

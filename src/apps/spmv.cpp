#include "apps/spmv.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "apps/ckpt_state.hpp"
#include "ckpt/checkpoint.hpp"
#include "hw/compute.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace deep::apps {

CsrBlock make_banded_matrix(int rank, int nranks, const SpmvConfig& config) {
  DEEP_EXPECT(config.rows_per_rank >= 1 && config.band >= 1 &&
                  config.nnz_per_row >= 2,
              "make_banded_matrix: bad configuration");
  DEEP_EXPECT(config.band < config.rows_per_rank,
              "make_banded_matrix: band must be narrower than a rank's rows "
              "(halo only reaches the adjacent ranks)");
  const int n = config.rows_per_rank * nranks;
  CsrBlock block;
  block.first_row = rank * config.rows_per_rank;
  block.rows = config.rows_per_rank;
  block.row_ptr.push_back(0);
  for (int local = 0; local < block.rows; ++local) {
    const int row = block.first_row + local;
    // Deterministic per-row off-diagonal pattern (identical no matter which
    // rank generates it).
    util::Rng rng(config.seed + static_cast<std::uint64_t>(row) * 2654435761u);
    std::set<int> cols;
    while (static_cast<int>(cols.size()) < config.nnz_per_row - 1) {
      const int offset =
          1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(config.band)));
      const int c = rng.chance(0.5) ? row - offset : row + offset;
      if (c >= 0 && c < n && c != row) cols.insert(c);
      // Edge rows may not have enough valid columns in the band.
      if (row < config.band || row >= n - config.band) {
        if (static_cast<int>(cols.size()) >= config.nnz_per_row - 3) break;
      }
    }
    double offdiag_sum = 0;
    for (const int c : cols) {
      const double v = -rng.uniform(0.1, 1.0);
      block.col.push_back(c);
      block.val.push_back(v);
      offdiag_sum += std::abs(v);
    }
    // Diagonal dominance keeps the spectrum positive and well behaved.
    block.col.push_back(row);
    block.val.push_back(offdiag_sum + 2.0);
    block.row_ptr.push_back(static_cast<int>(block.col.size()));
  }
  return block;
}

SpmvResult run_spmv_power(mpi::Mpi& mpi, const mpi::Comm& comm,
                          const SpmvConfig& config) {
  DEEP_EXPECT(config.iterations >= 1, "run_spmv_power: need iterations");
  const int nranks = comm.size();
  const int me = comm.rank();
  const int m = config.rows_per_rank;
  const CsrBlock a = make_banded_matrix(me, nranks, config);

  // x segment with halos: [band left | m local | band right].
  const int band = config.band;
  std::vector<double> x(static_cast<std::size_t>(m + 2 * band), 0.0);
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) x[static_cast<std::size_t>(band + i)] = 1.0;

  const auto xg = [&](int global_col) -> double {
    const int idx = global_col - a.first_row + band;
    DEEP_ASSERT(idx >= 0 && idx < m + 2 * band, "spmv: column outside halo");
    return x[static_cast<std::size_t>(idx)];
  };

  SpmvResult result;
  constexpr mpi::Tag kLeftTag = 91, kRightTag = 92;
  double eigen = 0;

  // Roll back to the planned checkpoint, if any.  The eigen estimate is
  // part of the state: a checkpoint at the final step must restore it even
  // though no further iteration recomputes it.
  int start_iter = 0;
  if (config.ckpt != nullptr) {
    if (auto restored = config.ckpt->restore(mpi.ctx())) {
      std::span<const std::byte> in(restored->bytes);
      detail::unpack(in, std::span<double>(x));
      detail::unpack(in, std::span<double>(&eigen, 1));
      start_iter = static_cast<int>(restored->version);
    }
  }

  for (int iter = start_iter; iter < config.iterations; ++iter) {
    // Halo exchange with the neighbouring ranks (regular pattern).
    std::vector<mpi::RequestPtr> reqs;
    const std::span<double> xs(x);
    if (me > 0) {
      reqs.push_back(mpi.irecv<double>(comm, me - 1, kRightTag,
                                       xs.subspan(0, static_cast<std::size_t>(band))));
      reqs.push_back(mpi.isend<double>(
          comm, me - 1, kLeftTag,
          std::span<const double>(xs.subspan(static_cast<std::size_t>(band),
                                             static_cast<std::size_t>(band)))));
      result.halo_bytes += 2 * band * 8;
    }
    if (me + 1 < nranks) {
      reqs.push_back(mpi.irecv<double>(
          comm, me + 1, kLeftTag,
          xs.subspan(static_cast<std::size_t>(band + m), static_cast<std::size_t>(band))));
      reqs.push_back(mpi.isend<double>(
          comm, me + 1, kRightTag,
          std::span<const double>(xs.subspan(static_cast<std::size_t>(m),
                                             static_cast<std::size_t>(band)))));
      result.halo_bytes += 2 * band * 8;
    }
    mpi.wait_all(reqs);

    // y = A x (real CSR multiply over the banded block).
    for (int i = 0; i < m; ++i) {
      double s = 0;
      for (int k = a.row_ptr[static_cast<std::size_t>(i)];
           k < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++k)
        s += a.val[static_cast<std::size_t>(k)] * xg(a.col[static_cast<std::size_t>(k)]);
      y[static_cast<std::size_t>(i)] = s;
    }
    // Rayleigh quotient + normalisation (global reductions).
    double local[2] = {0, 0};  // x.y, y.y
    for (int i = 0; i < m; ++i) {
      local[0] += x[static_cast<std::size_t>(band + i)] * y[static_cast<std::size_t>(i)];
      local[1] += y[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
    }
    double global[2];
    mpi.allreduce<double>(comm, mpi::Op::Sum, std::span<const double>(local, 2),
                          std::span<double>(global, 2));
    eigen = global[0];  // x normalised: x.Ax is the Rayleigh quotient
    const double inv_norm = 1.0 / std::sqrt(global[1]);
    for (int i = 0; i < m; ++i)
      x[static_cast<std::size_t>(band + i)] = y[static_cast<std::size_t>(i)] * inv_norm;

    // Modelled cost of the local multiply (memory-bound).
    mpi.compute(hw::kernels::spmv(a.row_ptr.back()), mpi.node().spec().cores);

    if (config.ckpt != nullptr && config.ckpt->interval() > 0 &&
        (iter + 1) % config.ckpt->interval() == 0) {
      std::vector<std::byte> state;
      detail::pack(state, std::span<const double>(x));
      detail::pack(state, std::span<const double>(&eigen, 1));
      config.ckpt->save(mpi.ctx(), static_cast<std::uint64_t>(iter + 1),
                        std::move(state));
    }
  }

  double local_sum = 0;
  for (int i = 0; i < m; ++i) local_sum += x[static_cast<std::size_t>(band + i)];
  double global_sum[1];
  const double in_sum[1] = {local_sum};
  mpi.allreduce<double>(comm, mpi::Op::Sum, std::span<const double>(in_sum, 1),
                        std::span<double>(global_sum, 1));
  result.eigenvalue = eigen;
  result.checksum = global_sum[0];
  return result;
}

}  // namespace deep::apps

#pragma once
// Bit-exact (de)serialisation of application checkpoint state.
//
// Checkpoint payloads are raw memcpy images of the kernels' double arrays:
// a restored state is bit-identical to the saved one, so replay from a
// checkpoint reproduces a fault-free run's arithmetic exactly — the property
// the resiliency chaos sweep asserts.

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace deep::apps::detail {

inline void pack(std::vector<std::byte>& out, std::span<const double> v) {
  const std::size_t off = out.size();
  out.resize(off + v.size_bytes());
  if (!v.empty()) std::memcpy(out.data() + off, v.data(), v.size_bytes());
}

/// Consumes v.size_bytes() from the front of `in`.
inline void unpack(std::span<const std::byte>& in, std::span<double> v) {
  DEEP_EXPECT(in.size() >= v.size_bytes(),
              "ckpt_state: restored payload too short");
  if (!v.empty()) std::memcpy(v.data(), in.data(), v.size_bytes());
  in = in.subspan(v.size_bytes());
}

}  // namespace deep::apps::detail

#include "apps/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "apps/ckpt_state.hpp"
#include "ckpt/checkpoint.hpp"
#include "hw/compute.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace deep::apps {

StencilResult run_jacobi(mpi::Mpi& mpi, const mpi::Comm& comm,
                         const StencilConfig& config) {
  DEEP_EXPECT(config.nx >= 3 && config.rows >= 1 && config.iterations >= 1,
              "run_jacobi: bad configuration");
  const int nx = config.nx;
  const int rows = config.rows;
  const int size = comm.size();
  const int me = comm.rank();
  const int up = me - 1;    // owns the rows above us (-1: global top edge)
  const int down = me + 1;  // below (size: global bottom edge)

  // Grid with halo rows 0 and rows+1; row-major.
  const auto idx = [nx](int r, int c) {
    return static_cast<std::size_t>(r) * nx + c;
  };
  std::vector<double> grid(static_cast<std::size_t>(rows + 2) * nx, 0.0);
  std::vector<double> next(grid.size(), 0.0);
  if (me == 0)
    for (int c = 0; c < nx; ++c) grid[idx(0, c)] = config.top_value;

  std::int64_t halo_messages = 0;
  double last_update = 0.0;
  constexpr mpi::Tag kUpTag = 71, kDownTag = 72;

  // Roll back to the planned checkpoint, if any: version v is the state
  // after completing iteration v-1, so the loop resumes at iter == v.
  int start_iter = 0;
  if (config.ckpt != nullptr) {
    if (auto restored = config.ckpt->restore(mpi.ctx())) {
      std::span<const std::byte> in(restored->bytes);
      detail::unpack(in, std::span<double>(grid));
      detail::unpack(in, std::span<double>(&last_update, 1));
      start_iter = static_cast<int>(restored->version);
    }
  }

  for (int iter = start_iter; iter < config.iterations; ++iter) {
    // Halo exchange: send my top interior row up, bottom interior row down.
    std::vector<mpi::RequestPtr> reqs;
    const std::span<double> top_halo(&grid[idx(0, 0)], static_cast<std::size_t>(nx));
    const std::span<double> bot_halo(&grid[idx(rows + 1, 0)],
                                     static_cast<std::size_t>(nx));
    const std::span<const double> top_row(&grid[idx(1, 0)],
                                          static_cast<std::size_t>(nx));
    const std::span<const double> bot_row(&grid[idx(rows, 0)],
                                          static_cast<std::size_t>(nx));
    if (up >= 0) {
      reqs.push_back(mpi.irecv<double>(comm, up, kDownTag, top_halo));
      reqs.push_back(mpi.isend<double>(comm, up, kUpTag, top_row));
      halo_messages += 2;
    }
    if (down < size) {
      reqs.push_back(mpi.irecv<double>(comm, down, kUpTag, bot_halo));
      reqs.push_back(mpi.isend<double>(comm, down, kDownTag, bot_row));
      halo_messages += 2;
    }
    mpi.wait_all(reqs);

    // Real 5-point sweep on the interior; fixed left/right edges.
    last_update = 0.0;
    for (int r = 1; r <= rows; ++r) {
      for (int c = 1; c < nx - 1; ++c) {
        const double v = 0.25 * (grid[idx(r - 1, c)] + grid[idx(r + 1, c)] +
                                 grid[idx(r, c - 1)] + grid[idx(r, c + 1)]);
        last_update = std::max(last_update, std::abs(v - grid[idx(r, c)]));
        next[idx(r, c)] = v;
      }
      next[idx(r, 0)] = grid[idx(r, 0)];
      next[idx(r, nx - 1)] = grid[idx(r, nx - 1)];
    }
    // Preserve halos/boundaries, then swap.
    std::copy_n(&grid[idx(0, 0)], nx, &next[idx(0, 0)]);
    std::copy_n(&grid[idx(rows + 1, 0)], nx, &next[idx(rows + 1, 0)]);
    grid.swap(next);

    // Burn the modelled sweep time on this rank's cores.
    mpi.compute(hw::kernels::jacobi2d(nx, rows), mpi.node().spec().cores);

    if (config.ckpt != nullptr && config.ckpt->interval() > 0 &&
        (iter + 1) % config.ckpt->interval() == 0) {
      std::vector<std::byte> state;
      detail::pack(state, std::span<const double>(grid));
      detail::pack(state, std::span<const double>(&last_update, 1));
      config.ckpt->save(mpi.ctx(), static_cast<std::uint64_t>(iter + 1),
                        std::move(state));
    }
  }

  // Global reductions: residual (max) and checksum (sum).
  double local_sum = 0.0;
  for (int r = 1; r <= rows; ++r)
    for (int c = 0; c < nx; ++c) local_sum += grid[idx(r, c)];

  StencilResult result;
  const double in_max[1] = {last_update};
  double out_max[1];
  mpi.allreduce<double>(comm, mpi::Op::Max, in_max, out_max);
  const double in_sum[1] = {local_sum};
  double out_sum[1];
  mpi.allreduce<double>(comm, mpi::Op::Sum, in_sum, out_sum);
  result.residual = out_max[0];
  result.checksum = out_sum[0];
  result.halo_messages = halo_messages;
  return result;
}

void run_irregular_exchange(mpi::Mpi& mpi, const mpi::Comm& comm,
                            const IrregularConfig& config) {
  DEEP_EXPECT(config.rounds >= 1 && config.bytes >= 1,
              "run_irregular_exchange: bad configuration");
  const int n = comm.size();
  const int me = comm.rank();
  std::vector<std::byte> sbuf(static_cast<std::size_t>(config.bytes));
  std::vector<std::byte> rbuf(static_cast<std::size_t>(config.bytes));

  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int round = 0; round < config.rounds; ++round) {
    // All ranks derive the same random pairing for this round.
    util::Rng rng(config.seed + static_cast<std::uint64_t>(round) * 7919);
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i)
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[rng.below(static_cast<std::uint64_t>(i + 1))]);
    // perm defines a pairing: partner of perm[2k] is perm[2k+1].
    int partner = me;
    for (int k = 0; k + 1 < n; k += 2) {
      if (perm[static_cast<std::size_t>(k)] == me)
        partner = perm[static_cast<std::size_t>(k + 1)];
      if (perm[static_cast<std::size_t>(k + 1)] == me)
        partner = perm[static_cast<std::size_t>(k)];
    }
    if (partner != me) {
      mpi.sendrecv_bytes(comm, partner, 80 + round, sbuf, partner, 80 + round,
                         rbuf);
    }
    mpi.compute({config.flops_per_round, 0.0, 0.0}, 1);
  }
}

}  // namespace deep::apps

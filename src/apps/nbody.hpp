#pragma once
// Direct-sum N-body — the compute-bound HSCP counterpart to the stencil.
//
// Particles are block-distributed over the ranks of a communicator; every
// step each rank circulates the particle blocks around a ring (allgather
// of positions) and accumulates forces on its own particles — O(N^2) flops
// against O(N) communication, the profile that loves many-core silicon.
// The arithmetic is real (softened gravity, leapfrog integration) and
// conserves momentum, which the tests check.

#include <cstdint>
#include <vector>

#include "mpi/mpi.hpp"

namespace deep::apps {

struct Body {
  double x = 0, y = 0, z = 0;    // position
  double vx = 0, vy = 0, vz = 0; // velocity
  double mass = 1.0;
};

struct NBodyConfig {
  int bodies_per_rank = 64;
  int steps = 4;
  double dt = 1e-3;
  double softening = 1e-2;
  std::uint64_t seed = 9;
};

struct NBodyResult {
  double momentum[3] = {0, 0, 0};  // global total (conserved)
  double kinetic = 0;              // global kinetic energy
  double checksum = 0;             // sum of |position| over all bodies
};

/// Generates this rank's initial particle block (deterministic in
/// rank+seed; the global initial momentum is exactly zero by construction).
std::vector<Body> make_bodies(int rank, const NBodyConfig& config);

/// Runs the distributed simulation on `comm`; collective.
NBodyResult run_nbody(mpi::Mpi& mpi, const mpi::Comm& comm,
                      const NBodyConfig& config);

/// Flops of one force evaluation sweep for n total bodies (per rank share).
double nbody_flops_per_rank(int total_bodies, int my_bodies);

}  // namespace deep::apps

#include "apps/cholesky.hpp"

#include <cmath>

#include "hw/compute.hpp"
#include "util/error.hpp"

namespace deep::apps {

TiledMatrix::TiledMatrix(int num_tiles, int tile_size)
    : nt_(num_tiles), ts_(tile_size) {
  DEEP_EXPECT(num_tiles >= 1 && tile_size >= 1, "TiledMatrix: bad dimensions");
  data_.assign(static_cast<std::size_t>(nt_) * nt_ * ts_ * ts_, 0.0);
}

std::span<double> TiledMatrix::tile(int i, int j) {
  DEEP_EXPECT(i >= 0 && i < nt_ && j >= 0 && j < nt_, "tile: out of range");
  const std::size_t elems = static_cast<std::size_t>(ts_) * ts_;
  return std::span<double>(data_).subspan(
      (static_cast<std::size_t>(j) * nt_ + i) * elems, elems);
}

std::span<const double> TiledMatrix::tile(int i, int j) const {
  DEEP_EXPECT(i >= 0 && i < nt_ && j >= 0 && j < nt_, "tile: out of range");
  const std::size_t elems = static_cast<std::size_t>(ts_) * ts_;
  return std::span<const double>(data_).subspan(
      (static_cast<std::size_t>(j) * nt_ + i) * elems, elems);
}

double& TiledMatrix::at(int row, int col) {
  const int ti = row / ts_, tj = col / ts_;
  auto t = tile(ti, tj);
  return t[static_cast<std::size_t>(col % ts_) * ts_ + row % ts_];
}

double TiledMatrix::at(int row, int col) const {
  const int ti = row / ts_, tj = col / ts_;
  auto t = tile(ti, tj);
  return t[static_cast<std::size_t>(col % ts_) * ts_ + row % ts_];
}

// ---------------------------------------------------------------------------
// Tile kernels
// ---------------------------------------------------------------------------

void potrf_tile(std::span<double> a, int ts) {
  for (int j = 0; j < ts; ++j) {
    double d = a[static_cast<std::size_t>(j) * ts + j];
    for (int k = 0; k < j; ++k) {
      const double v = a[static_cast<std::size_t>(k) * ts + j];
      d -= v * v;
    }
    DEEP_EXPECT(d > 0.0, "potrf: matrix not positive definite");
    d = std::sqrt(d);
    a[static_cast<std::size_t>(j) * ts + j] = d;
    for (int i = j + 1; i < ts; ++i) {
      double s = a[static_cast<std::size_t>(j) * ts + i];
      for (int k = 0; k < j; ++k)
        s -= a[static_cast<std::size_t>(k) * ts + i] *
             a[static_cast<std::size_t>(k) * ts + j];
      a[static_cast<std::size_t>(j) * ts + i] = s / d;
    }
    // Zero the upper triangle for cleanliness.
    for (int i = 0; i < j; ++i) a[static_cast<std::size_t>(j) * ts + i] = 0.0;
  }
}

void trsm_tile(std::span<const double> t, std::span<double> b, int ts) {
  // Solve X * T^T = B for X, T lower triangular: column sweep.
  for (int j = 0; j < ts; ++j) {
    const double d = t[static_cast<std::size_t>(j) * ts + j];
    for (int i = 0; i < ts; ++i) {
      double s = b[static_cast<std::size_t>(j) * ts + i];
      for (int k = 0; k < j; ++k)
        s -= b[static_cast<std::size_t>(k) * ts + i] *
             t[static_cast<std::size_t>(k) * ts + j];
      b[static_cast<std::size_t>(j) * ts + i] = s / d;
    }
  }
}

void syrk_tile(std::span<const double> a, std::span<double> c, int ts) {
  for (int j = 0; j < ts; ++j)
    for (int i = j; i < ts; ++i) {
      double s = 0.0;
      for (int k = 0; k < ts; ++k)
        s += a[static_cast<std::size_t>(k) * ts + i] *
             a[static_cast<std::size_t>(k) * ts + j];
      c[static_cast<std::size_t>(j) * ts + i] -= s;
    }
}

void gemm_tile(std::span<const double> a, std::span<const double> b,
               std::span<double> c, int ts) {
  for (int j = 0; j < ts; ++j)
    for (int i = 0; i < ts; ++i) {
      double s = 0.0;
      for (int k = 0; k < ts; ++k)
        s += a[static_cast<std::size_t>(k) * ts + i] *
             b[static_cast<std::size_t>(k) * ts + j];
      c[static_cast<std::size_t>(j) * ts + i] -= s;
    }
}

// ---------------------------------------------------------------------------
// Setup & verification
// ---------------------------------------------------------------------------

void fill_spd(TiledMatrix& a, std::uint64_t seed) {
  util::Rng rng(seed);
  const int n = a.n();
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  // Diagonal dominance guarantees positive definiteness.
  for (int i = 0; i < n; ++i) a.at(i, i) += n;
}

void cholesky_reference(TiledMatrix& a) {
  const int nt = a.num_tiles(), ts = a.tile_size();
  for (int k = 0; k < nt; ++k) {
    potrf_tile(a.tile(k, k), ts);
    for (int i = k + 1; i < nt; ++i) trsm_tile(a.tile(k, k), a.tile(i, k), ts);
    for (int i = k + 1; i < nt; ++i) {
      for (int j = k + 1; j < i; ++j)
        gemm_tile(a.tile(i, k), a.tile(j, k), a.tile(i, j), ts);
      syrk_tile(a.tile(i, k), a.tile(i, i), ts);
    }
  }
}

double factor_error(const TiledMatrix& factor, const TiledMatrix& original) {
  const int n = factor.n();
  double max_err = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) s += factor.at(i, k) * factor.at(j, k);
      max_err = std::max(max_err, std::abs(s - original.at(i, j)));
    }
  }
  return max_err;
}

// ---------------------------------------------------------------------------
// Task-graph submission (the slide-23 program, pragmas --> regions)
// ---------------------------------------------------------------------------

void submit_cholesky_tasks(ompss::Runtime& runtime, TiledMatrix& a) {
  const int nt = a.num_tiles(), ts = a.tile_size();
  // Panel tasks sit on the critical path: raise their priority so workers
  // prefer them over trailing updates (standard tiled-Cholesky scheduling).
  constexpr int kPanelPriority = 2, kTrsmPriority = 1;
  for (int k = 0; k < nt; ++k) {
    runtime.submit("potrf", {ompss::inout(a.tile(k, k))},
                   hw::kernels::potrf(ts),
                   [&a, k, ts] { potrf_tile(a.tile(k, k), ts); },
                   kPanelPriority);
    for (int i = k + 1; i < nt; ++i) {
      runtime.submit(
          "trsm", {ompss::in(std::span<const double>(a.tile(k, k))),
                   ompss::inout(a.tile(i, k))},
          hw::kernels::trsm(ts),
          [&a, k, i, ts] { trsm_tile(a.tile(k, k), a.tile(i, k), ts); },
          kTrsmPriority);
    }
    for (int i = k + 1; i < nt; ++i) {
      for (int j = k + 1; j < i; ++j) {
        runtime.submit(
            "gemm", {ompss::in(std::span<const double>(a.tile(i, k))),
                     ompss::in(std::span<const double>(a.tile(j, k))),
                     ompss::inout(a.tile(i, j))},
            hw::kernels::gemm(ts), [&a, i, j, k, ts] {
              gemm_tile(a.tile(i, k), a.tile(j, k), a.tile(i, j), ts);
            });
      }
      runtime.submit(
          "syrk", {ompss::in(std::span<const double>(a.tile(i, k))),
                   ompss::inout(a.tile(i, i))},
          hw::kernels::syrk(ts),
          [&a, i, k, ts] { syrk_tile(a.tile(i, k), a.tile(i, i), ts); });
    }
  }
}

double cholesky_flops(int n) {
  const double nn = n;
  return nn * nn * nn / 3.0;
}

}  // namespace deep::apps

#include "apps/nbody.hpp"

#include <cmath>

#include "hw/compute.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace deep::apps {

std::vector<Body> make_bodies(int rank, const NBodyConfig& config) {
  DEEP_EXPECT(config.bodies_per_rank >= 2 && config.bodies_per_rank % 2 == 0,
              "make_bodies: bodies_per_rank must be even and >= 2");
  util::Rng rng(config.seed + static_cast<std::uint64_t>(rank) * 7919);
  std::vector<Body> bodies(static_cast<std::size_t>(config.bodies_per_rank));
  // Pairs with opposite velocities: the global momentum starts at exactly 0.
  for (std::size_t i = 0; i < bodies.size(); i += 2) {
    Body& a = bodies[i];
    Body& b = bodies[i + 1];
    a.x = rng.uniform(-1, 1);
    a.y = rng.uniform(-1, 1);
    a.z = rng.uniform(-1, 1);
    a.vx = rng.uniform(-0.1, 0.1);
    a.vy = rng.uniform(-0.1, 0.1);
    a.vz = rng.uniform(-0.1, 0.1);
    b = a;
    b.x = -a.x + rng.uniform(-0.01, 0.01);
    b.y = -a.y;
    b.z = -a.z;
    b.vx = -a.vx;
    b.vy = -a.vy;
    b.vz = -a.vz;
  }
  return bodies;
}

double nbody_flops_per_rank(int total_bodies, int my_bodies) {
  // ~20 flops per pair interaction.
  return 20.0 * static_cast<double>(total_bodies) * my_bodies;
}

NBodyResult run_nbody(mpi::Mpi& mpi, const mpi::Comm& comm,
                      const NBodyConfig& config) {
  DEEP_EXPECT(config.steps >= 1, "run_nbody: need at least one step");
  const int n = comm.size();
  const int local = config.bodies_per_rank;
  const int total = local * n;
  std::vector<Body> mine = make_bodies(comm.rank(), config);

  // Flat position/mass arrays circulated each step (4 doubles per body).
  std::vector<double> my_pos(static_cast<std::size_t>(local) * 4);
  std::vector<double> all_pos(static_cast<std::size_t>(total) * 4);
  std::vector<double> fx(static_cast<std::size_t>(local)),
      fy(static_cast<std::size_t>(local)), fz(static_cast<std::size_t>(local));

  for (int step = 0; step < config.steps; ++step) {
    for (int i = 0; i < local; ++i) {
      const Body& b = mine[static_cast<std::size_t>(i)];
      my_pos[static_cast<std::size_t>(i) * 4 + 0] = b.x;
      my_pos[static_cast<std::size_t>(i) * 4 + 1] = b.y;
      my_pos[static_cast<std::size_t>(i) * 4 + 2] = b.z;
      my_pos[static_cast<std::size_t>(i) * 4 + 3] = b.mass;
    }
    mpi.allgather<double>(comm, std::span<const double>(my_pos),
                          std::span<double>(all_pos));

    const double eps2 = config.softening * config.softening;
    for (int i = 0; i < local; ++i) {
      const Body& b = mine[static_cast<std::size_t>(i)];
      double ax = 0, ay = 0, az = 0;
      const int me_global = comm.rank() * local + i;
      for (int j = 0; j < total; ++j) {
        if (j == me_global) continue;
        const double* p = &all_pos[static_cast<std::size_t>(j) * 4];
        const double dx = p[0] - b.x, dy = p[1] - b.y, dz = p[2] - b.z;
        const double r2 = dx * dx + dy * dy + dz * dz + eps2;
        const double inv_r = 1.0 / std::sqrt(r2);
        const double f = p[3] * inv_r * inv_r * inv_r;
        ax += f * dx;
        ay += f * dy;
        az += f * dz;
      }
      fx[static_cast<std::size_t>(i)] = ax;
      fy[static_cast<std::size_t>(i)] = ay;
      fz[static_cast<std::size_t>(i)] = az;
    }
    for (int i = 0; i < local; ++i) {
      Body& b = mine[static_cast<std::size_t>(i)];
      b.vx += config.dt * fx[static_cast<std::size_t>(i)];
      b.vy += config.dt * fy[static_cast<std::size_t>(i)];
      b.vz += config.dt * fz[static_cast<std::size_t>(i)];
      b.x += config.dt * b.vx;
      b.y += config.dt * b.vy;
      b.z += config.dt * b.vz;
    }
    // Burn the modelled sweep time on all cores of this node.
    mpi.compute({nbody_flops_per_rank(total, local),
                 8.0 * 4 * static_cast<double>(total), 0.0},
                mpi.node().spec().cores);
  }

  // Global diagnostics.
  double local_stats[5] = {0, 0, 0, 0, 0};  // px, py, pz, kinetic, checksum
  for (const Body& b : mine) {
    local_stats[0] += b.mass * b.vx;
    local_stats[1] += b.mass * b.vy;
    local_stats[2] += b.mass * b.vz;
    local_stats[3] +=
        0.5 * b.mass * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
    local_stats[4] += std::abs(b.x) + std::abs(b.y) + std::abs(b.z);
  }
  double global_stats[5];
  mpi.allreduce<double>(comm, mpi::Op::Sum,
                        std::span<const double>(local_stats, 5),
                        std::span<double>(global_stats, 5));
  NBodyResult result;
  result.momentum[0] = global_stats[0];
  result.momentum[1] = global_stats[1];
  result.momentum[2] = global_stats[2];
  result.kinetic = global_stats[3];
  result.checksum = global_stats[4];
  return result;
}

}  // namespace deep::apps

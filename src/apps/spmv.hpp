#pragma once
// Distributed sparse matrix-vector multiply — the paper's first example of a
// code "capable to scale to O(300k) cores" (slide 9): banded sparsity gives
// highly regular nearest-neighbour communication.
//
// The matrix is a deterministic, diagonally-dominant banded matrix with
// row-wise distribution; each power-iteration step exchanges the x-vector
// boundary segments with the two neighbouring ranks (the halo), performs the
// real CSR multiply, and normalises with an allreduce.  The dominant
// eigenvalue estimate converges identically regardless of distribution.

#include <cstdint>
#include <vector>

#include "mpi/mpi.hpp"

namespace deep::ckpt {
class Checkpointer;
}

namespace deep::apps {

struct SpmvConfig {
  int rows_per_rank = 128;
  int band = 16;          // off-diagonal entries live within +- band
  int nnz_per_row = 8;    // including the diagonal
  int iterations = 10;    // power-iteration steps
  std::uint64_t seed = 33;
  /// Checkpoint/restart handle (ProgramEnv::ckpt): state is the x vector
  /// (halos included) plus the running eigenvalue estimate, saved every
  /// ckpt->interval() steps; replay from a restore is bit-exact.
  /// halo_bytes counts only the current attempt's traffic.
  ckpt::Checkpointer* ckpt = nullptr;
};

struct SpmvResult {
  double eigenvalue = 0;   // Rayleigh-quotient estimate after the last step
  double checksum = 0;     // sum over the final normalised vector
  std::int64_t halo_bytes = 0;  // bytes this rank exchanged
};

/// Local CSR block of the global banded matrix (rows [first_row, first_row+m)).
struct CsrBlock {
  int first_row = 0;
  int rows = 0;
  std::vector<int> row_ptr;   // size rows+1
  std::vector<int> col;       // global column indices
  std::vector<double> val;
};

/// Builds this rank's rows of the deterministic global matrix.
CsrBlock make_banded_matrix(int rank, int nranks, const SpmvConfig& config);

/// Runs power iteration on `comm`; collective, every rank passes the same
/// config.  Returns globally-reduced results (identical on every rank).
SpmvResult run_spmv_power(mpi::Mpi& mpi, const mpi::Comm& comm,
                          const SpmvConfig& config);

}  // namespace deep::apps

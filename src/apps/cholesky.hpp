#pragma once
// Tiled Cholesky factorisation — the paper's own OmpSs example (slide 23).
//
// The matrix is stored as NT x NT column-major tiles of TS x TS doubles.
// submit_cholesky_tasks() emits exactly the task graph of the slide:
//
//   for k:  potrf(A[k][k])
//     for i>k:  trsm(A[k][k], A[k][i])
//     for i>k:  for j<i: gemm(A[k][i], A[k][j], A[j][i]);  syrk(A[k][i], A[i][i])
//
// with in/inout regions on the tiles, so the runtime extracts the wavefront
// parallelism from sequential-looking code.  The tile kernels do the real
// arithmetic (results are verified against L*L^T = A), while their modelled
// execution time comes from hw::kernels::{potrf,trsm,syrk,gemm}.

#include <cstdint>
#include <span>
#include <vector>

#include "ompss/runtime.hpp"
#include "util/rng.hpp"

namespace deep::apps {

/// Lower-triangular tiled matrix holder (column-major within tiles).
class TiledMatrix {
 public:
  TiledMatrix(int num_tiles, int tile_size);

  int num_tiles() const { return nt_; }
  int tile_size() const { return ts_; }
  int n() const { return nt_ * ts_; }

  /// Tile (i, j): block row i, block column j.
  std::span<double> tile(int i, int j);
  std::span<const double> tile(int i, int j) const;

  /// Element access across tiles (row, col of the full matrix).
  double& at(int row, int col);
  double at(int row, int col) const;

  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

 private:
  int nt_;
  int ts_;
  std::vector<double> data_;
};

// -- real tile kernels (double precision, column-major ts x ts tiles) --------

/// Unblocked Cholesky of a tile: A := L with A = L*L^T (lower). Throws
/// util::SimError if the tile is not positive definite.
void potrf_tile(std::span<double> a, int ts);
/// B := B * L^-T  (right-solve with the transposed lower factor in T).
void trsm_tile(std::span<const double> t, std::span<double> b, int ts);
/// C := C - A * A^T (symmetric rank-ts update, lower part).
void syrk_tile(std::span<const double> a, std::span<double> c, int ts);
/// C := C - A * B^T.
void gemm_tile(std::span<const double> a, std::span<const double> b,
               std::span<double> c, int ts);

// -- problem setup & verification --------------------------------------------

/// Fills the matrix with a random symmetric positive-definite problem
/// (diagonally dominant), reproducibly from `seed`.
void fill_spd(TiledMatrix& a, std::uint64_t seed);

/// Sequential reference factorisation (no tasks); same tile kernels.
void cholesky_reference(TiledMatrix& a);

/// Max |(L*L^T - A0)| over the lower triangle; a should be the factor of a0.
double factor_error(const TiledMatrix& factor, const TiledMatrix& original);

// -- OmpSs task-graph version -------------------------------------------------

/// Submits the full tiled-Cholesky DAG onto `runtime`.  Caller taskwait()s.
void submit_cholesky_tasks(ompss::Runtime& runtime, TiledMatrix& a);

/// Total flops of the factorisation (n^3/3).
double cholesky_flops(int n);

}  // namespace deep::apps
